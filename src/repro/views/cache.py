"""Keyed hot-query result cache with LRU + byte-budget eviction.

:class:`ResultCache` maps :class:`~repro.views.keys.QueryShape` keys to
fully-computed answer sets (canonical order) so a repeated query is
served in O(answer) time with zero dominance comparisons.  Two budgets
bound residency -- an entry-count cap and a byte budget over the
estimated answer-set footprints -- evicted least-recently-used first;
``pinned`` entries (registered materialized variants managed by a
:class:`~repro.views.manager.ViewManager`) are exempt from LRU eviction
but not from explicit invalidation.

The cache itself is a passive, thread-safe map: *when* entries are
invalidated is the :class:`~repro.views.manager.ViewManager`'s business
(it observes committed dataset updates under the server's writer lock),
and *whether* a hit may be trusted is guaranteed by that protocol, never
by entry ageing -- there is no TTL, because a cached answer is correct
until an update touching its region commits.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.exceptions import ServingError
from repro.views.keys import QueryShape, canonical_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.metrics import ServerMetrics
    from repro.transform.point import Point

__all__ = ["CacheEntry", "ResultCache", "estimate_result_bytes"]

#: Rough per-point footprint: a Point carries its transformed vector
#: (floats), poset node indexes, native sets and the record reference;
#: the cache stores only list slots + shared references, so the charge
#: is the list slot plus bookkeeping, scaled by dimensionality.
_POINT_BYTES_BASE = 64
_PER_DIMENSION_BYTES = 8
_ENTRY_OVERHEAD_BYTES = 256


def estimate_result_bytes(points: list, dimensions: int) -> int:
    """Estimated resident footprint of one cached answer set."""
    per_point = _POINT_BYTES_BASE + _PER_DIMENSION_BYTES * max(dimensions, 1)
    return _ENTRY_OVERHEAD_BYTES + per_point * len(points)


class CacheEntry:
    """One cached answer set and its bookkeeping."""

    __slots__ = ("shape", "points", "region", "bytes", "created_at",
                 "version", "hits", "pinned")

    def __init__(self, shape: QueryShape, points: list, region, size: int,
                 created_at: float, version: int, pinned: bool) -> None:
        self.shape = shape
        #: Canonically-ordered answer points (never mutated in place).
        self.points = points
        #: The original :class:`~repro.queries.constrained.Constraint`
        #: for constrained shapes -- kept so invalidation can test
        #: whether an updated point falls inside the entry's region.
        self.region = region
        self.bytes = size
        self.created_at = created_at
        #: Dataset ``update_version`` the answer was computed against.
        self.version = version
        self.hits = 0
        self.pinned = pinned

    def age(self, now: float) -> float:
        """Seconds since the entry was (re)populated."""
        return max(0.0, now - self.created_at)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheEntry({self.shape}, {len(self.points)} answers, "
            f"{self.bytes}B, hits={self.hits}{', pinned' if self.pinned else ''})"
        )


class ResultCache:
    """Thread-safe LRU + byte-budget cache of canonical answer sets.

    Parameters
    ----------
    max_entries:
        Entry-count cap (unpinned entries beyond it evict LRU-first).
    max_bytes:
        Byte budget over the estimated resident footprints.
    metrics:
        Optional :class:`~repro.serving.metrics.ServerMetrics`; when
        given, eviction counts and the bytes/entries gauges are pushed
        there after every mutation (hit/miss/invalidation events are the
        manager's and server's to record -- they know *why*).
    clock:
        Injectable time source (tests).
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int = 32 * 1024 * 1024,
        metrics: "ServerMetrics | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ServingError("max_entries must be positive")
        if max_bytes < 1:
            raise ServingError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.metrics = metrics
        self._clock = clock
        self._entries: "OrderedDict[QueryShape, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.bytes_resident = 0
        # Standalone counters (mirrored into ServerMetrics when attached).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, shape: QueryShape) -> bool:
        with self._lock:
            return shape in self._entries

    def get(self, shape: QueryShape) -> CacheEntry | None:
        """The entry for ``shape`` (refreshed to most-recently-used)."""
        with self._lock:
            entry = self._entries.get(shape)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(shape)
            entry.hits += 1
            self.hits += 1
            return entry

    def put(
        self,
        shape: QueryShape,
        points: list,
        dimensions: int,
        region=None,
        version: int = 0,
        pinned: bool = False,
    ) -> CacheEntry:
        """Store (or replace) the canonical answer set for ``shape``."""
        ordered = canonical_order(points)
        size = estimate_result_bytes(ordered, dimensions)
        entry = CacheEntry(
            shape, ordered, region, size, self._clock(), version, pinned
        )
        with self._lock:
            old = self._entries.pop(shape, None)
            if old is not None:
                self.bytes_resident -= old.bytes
            self._entries[shape] = entry
            self.bytes_resident += size
            self.stores += 1
            evicted = self._evict_over_budget()
        self._push_gauges(evicted)
        return entry

    def _evict_over_budget(self) -> int:
        """LRU-evict unpinned entries until both budgets hold (locked)."""
        evicted = 0
        while len(self._entries) > self.max_entries or (
            self.bytes_resident > self.max_bytes and len(self._entries) > 1
        ):
            victim_shape = next(
                (s for s, e in self._entries.items() if not e.pinned), None
            )
            if victim_shape is None:
                break  # everything pinned: budgets are advisory then
            victim = self._entries.pop(victim_shape)
            self.bytes_resident -= victim.bytes
            self.evictions += 1
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    def invalidate(self, shape: QueryShape) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            entry = self._entries.pop(shape, None)
            if entry is not None:
                self.bytes_resident -= entry.bytes
                self.invalidations += 1
        self._push_gauges(0)
        return entry is not None

    def invalidate_where(
        self, predicate: Callable[[CacheEntry], bool]
    ) -> int:
        """Drop every entry matching ``predicate``; returns the count."""
        with self._lock:
            victims = [
                shape
                for shape, entry in self._entries.items()
                if predicate(entry)
            ]
            for shape in victims:
                entry = self._entries.pop(shape)
                self.bytes_resident -= entry.bytes
            self.invalidations += len(victims)
        self._push_gauges(0)
        return len(victims)

    def clear(self) -> int:
        """Drop every entry; returns how many were resident."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.bytes_resident = 0
            self.invalidations += dropped
        self._push_gauges(0)
        return dropped

    # ------------------------------------------------------------------
    def _push_gauges(self, evicted: int) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        if evicted:
            metrics.on_cache_evicted(evicted)
        metrics.set_cache_resident(self.bytes_resident, len(self._entries))

    def snapshot(self) -> dict:
        """JSON-able summary of residency and traffic."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes_resident": self.bytes_resident,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "shapes": [str(shape) for shape in self._entries],
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(entries={len(self._entries)}, "
            f"bytes={self.bytes_resident}, hits={self.hits}, "
            f"misses={self.misses})"
        )
