"""Canonical query-shape keys for result caching.

A :class:`QueryShape` identifies *what answer set* a query asks for,
independently of *how* it is computed: the algorithm name, the dominance
kernel, the evaluation method (``bbs`` vs ``nested-loops``) and any
algorithm tuning options are all deliberately excluded, because every
algorithm in this library returns the same canonical answer set for the
same shape.  Two requests with equal shapes are therefore
cache-equivalent even when one asks for ``bnl`` on the python kernel and
the other for ``sdc+`` on numpy.

The shape's algorithm-independent fields:

* ``kind`` -- ``"skyline"`` (full space), ``"subspace"``,
  ``"constrained"`` or ``"skyband"``;
* ``subspace`` -- the sorted attribute-name tuple of a subspace query;
* ``constraint_key`` -- the canonicalized predicate tuple of a
  :class:`~repro.queries.constrained.Constraint` (sorted per-attribute
  ranges and dominance anchors, so two constraints built from dicts in
  different insertion orders key identically);
* ``k`` -- the skyband dominator threshold.

Answer sets are cached in *canonical order* -- sorted by record id via
:func:`canonical_order` -- because emission order is an algorithm
property, not a shape property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.exceptions import ServingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.queries.constrained import Constraint
    from repro.transform.point import Point

__all__ = ["QueryShape", "constraint_key", "canonical_order"]


def _rid_sort_key(rid) -> tuple[str, str]:
    # Mixed-type record ids (ints and strings) are not mutually
    # orderable; sort on (type, repr) exactly like the skycube does.
    return (str(type(rid)), str(rid))


def canonical_order(points: Iterable["Point"]) -> list["Point"]:
    """Answer points in the cache's canonical (record-id) order."""
    return sorted(points, key=lambda p: _rid_sort_key(p.record.rid))


def constraint_key(constraint: "Constraint") -> tuple:
    """Hashable canonical form of a constraint's predicate conjunction."""
    ranges = tuple(
        sorted(
            (
                name,
                None if lo is None else float(lo),
                None if hi is None else float(hi),
            )
            for name, (lo, hi) in constraint.ranges.items()
        )
    )
    must = tuple(
        sorted(
            constraint.must_dominate.items(),
            key=lambda kv: (kv[0], str(kv[1])),
        )
    )
    dominated = tuple(
        sorted(
            constraint.dominated_by.items(),
            key=lambda kv: (kv[0], str(kv[1])),
        )
    )
    return (ranges, must, dominated)


@dataclass(frozen=True)
class QueryShape:
    """One query's canonical, algorithm-independent identity."""

    kind: str = "skyline"
    subspace: tuple[str, ...] = ()
    constraint_key: tuple = ()
    k: int = 0

    @classmethod
    def full_skyline(cls) -> "QueryShape":
        """The full-space skyline shape."""
        return cls()

    @classmethod
    def for_subspace(cls, attributes: Iterable[str]) -> "QueryShape":
        """Shape of a subspace skyline over ``attributes``."""
        names = tuple(sorted(attributes))
        if not names:
            raise ServingError("a subspace shape needs at least one attribute")
        return cls(kind="subspace", subspace=names)

    @classmethod
    def for_constraint(cls, constraint: "Constraint") -> "QueryShape":
        """Shape of a constrained skyline under ``constraint``."""
        return cls(kind="constrained", constraint_key=constraint_key(constraint))

    @classmethod
    def for_skyband(cls, k: int) -> "QueryShape":
        """Shape of the ``k``-skyband."""
        if k < 1:
            raise ServingError(f"skyband k must be positive, got {k!r}")
        return cls(kind="skyband", k=k)

    @classmethod
    def of(
        cls,
        subspace: Iterable[str] | None = None,
        constraint: "Constraint | None" = None,
        skyband_k: int | None = None,
    ) -> "QueryShape":
        """Shape of a request given its (at most one) shaping field."""
        given = [
            name
            for name, value in (
                ("subspace", subspace),
                ("constraint", constraint),
                ("skyband_k", skyband_k),
            )
            if value is not None
        ]
        if len(given) > 1:
            raise ServingError(
                f"a query has exactly one shape; got {' + '.join(given)}"
            )
        if subspace is not None:
            return cls.for_subspace(subspace)
        if constraint is not None:
            return cls.for_constraint(constraint)
        if skyband_k is not None:
            return cls.for_skyband(skyband_k)
        return cls.full_skyline()

    def __str__(self) -> str:
        if self.kind == "subspace":
            return f"subspace[{','.join(self.subspace)}]"
        if self.kind == "constrained":
            return f"constrained[{hash(self.constraint_key) & 0xFFFFFF:06x}]"
        if self.kind == "skyband":
            return f"skyband[k={self.k}]"
        return "skyline"
