"""repro -- Stratified computation of skylines with partially-ordered domains.

A from-scratch reproduction of Chan, Eng and Tan (SIGMOD 2005): skyline
queries over schemas mixing totally-ordered attributes with
partially-ordered (poset / set-valued) attributes, evaluated via interval
domain transformation, R*-tree indexing and the BBS+/SDC/SDC+ family of
algorithms, plus the BNL/BNL+ baselines of the paper's performance study.

Quick start::

    from repro import NumericAttribute, PosetAttribute, Record, Schema, skyline
    from repro.posets import from_set_family

    amenities = from_set_family({
        "full":  {"gym", "pool", "spa"},
        "fit":   {"gym"},
        "swim":  {"pool"},
        "basic": set(),
    })
    schema = Schema([
        NumericAttribute("price", "min"),
        PosetAttribute.set_valued("amenities", amenities),
    ])
    hotels = [
        Record("Grand", (320,), ("full",)),
        Record("Budget", (80,), ("basic",)),
        Record("Middle", (150,), ("fit",)),
        Record("Worse", (200,), ("fit",)),
    ]
    answers = skyline(hotels, schema, algorithm="sdc+")
"""

from repro.core.batch import BatchDominanceKernel
from repro.core.categories import Category
from repro.core.record import Record
from repro.core.schema import AttributeKind, NumericAttribute, PosetAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.engine import SkylineEngine, skyline
from repro.exceptions import (
    AdmissionRejectedError,
    AlgorithmError,
    BudgetExhaustedError,
    CyclicPosetError,
    InputFormatError,
    KernelError,
    KernelFallbackWarning,
    ParallelError,
    ParallelFallbackWarning,
    PosetError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ResilienceError,
    RTreeError,
    SchemaError,
    ServingError,
    UnknownValueError,
    WorkloadError,
)
from repro.parallel import ParallelConfig, ParallelResult, ParallelSkylineExecutor
from repro.posets.optimize import SpanningTreeStrategy
from repro.posets.poset import Poset
from repro.algorithms.base import available_algorithms, get_algorithm
from repro.resilience import (
    CancellationToken,
    PartialResult,
    QueryContext,
    ResourceBudget,
    execute,
)
from repro.serving import QueryRequest, ServerMetrics, SkylineServer
from repro.views import QueryShape, ResultCache, ViewManager
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

__version__ = "1.0.0"

__all__ = [
    "Category",
    "Record",
    "Schema",
    "AttributeKind",
    "NumericAttribute",
    "PosetAttribute",
    "ComparisonStats",
    "BatchDominanceKernel",
    "SkylineEngine",
    "skyline",
    "Poset",
    "SpanningTreeStrategy",
    "available_algorithms",
    "get_algorithm",
    "WorkloadConfig",
    "generate_workload",
    "CancellationToken",
    "QueryContext",
    "ResourceBudget",
    "PartialResult",
    "execute",
    "SkylineServer",
    "QueryRequest",
    "ServerMetrics",
    "QueryShape",
    "ResultCache",
    "ViewManager",
    "ReproError",
    "PosetError",
    "CyclicPosetError",
    "UnknownValueError",
    "SchemaError",
    "AlgorithmError",
    "WorkloadError",
    "RTreeError",
    "InputFormatError",
    "KernelError",
    "ResilienceError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "BudgetExhaustedError",
    "KernelFallbackWarning",
    "ServingError",
    "AdmissionRejectedError",
    "ParallelConfig",
    "ParallelResult",
    "ParallelSkylineExecutor",
    "ParallelError",
    "ParallelFallbackWarning",
    "__version__",
]
