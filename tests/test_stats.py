"""Tests for counters and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core.stats import ComparisonStats
from repro.exceptions import (
    AlgorithmError,
    CyclicPosetError,
    IndexError_,
    PosetError,
    ReproError,
    SchemaError,
    UnknownValueError,
    WorkloadError,
)


class TestComparisonStats:
    def test_snapshot_roundtrip(self):
        s = ComparisonStats()
        s.m_dominance_point += 3
        s.native_set += 2
        snap = s.snapshot()
        assert snap["m_dominance_point"] == 3
        assert snap["native_set"] == 2
        s.m_dominance_point += 1
        assert snap["m_dominance_point"] == 3  # snapshot is detached

    def test_reset(self):
        s = ComparisonStats(node_accesses=5)
        s.reset()
        assert s.node_accesses == 0

    def test_merge(self):
        a = ComparisonStats(heap_pushes=2)
        b = ComparisonStats(heap_pushes=3, native_set=1)
        a.merge(b)
        assert a.heap_pushes == 5
        assert a.native_set == 1

    def test_total_dominance_checks(self):
        s = ComparisonStats(m_dominance_point=1, native_set=2, native_numeric=3)
        assert s.total_dominance_checks == 6

    def test_diff(self):
        s = ComparisonStats()
        before = s.snapshot()
        s.window_inserts += 4
        assert s.diff(before)["window_inserts"] == 4

    def test_str(self):
        assert "m_dominance_point" in str(ComparisonStats())


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            PosetError,
            CyclicPosetError,
            UnknownValueError,
            SchemaError,
            IndexError_,
            AlgorithmError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_cyclic_message(self):
        e = CyclicPosetError(["a", "b", "a"])
        assert "a -> b -> a" in str(e)
        assert CyclicPosetError().cycle is None

    def test_unknown_value_message(self):
        assert "'q'" in str(UnknownValueError("q"))

    def test_poset_errors_catchable_as_poset_error(self):
        assert issubclass(CyclicPosetError, PosetError)
        assert issubclass(UnknownValueError, PosetError)
