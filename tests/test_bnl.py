"""Tests for block-nested-loops (window semantics, passes, early output)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline, random_mixed_dataset
from repro.algorithms.bnl import BlockNestedLoops, bnl_passes
from repro.core.record import Record
from repro.core.schema import NumericAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.exceptions import AlgorithmError
from repro.transform.dataset import TransformedDataset


def numeric_dataset(values: list[tuple[float, ...]]) -> TransformedDataset:
    dims = len(values[0]) if values else 2
    schema = Schema([NumericAttribute(f"x{k}") for k in range(dims)])
    return TransformedDataset(schema, [Record(i, v) for i, v in enumerate(values)])


def run_bnl(dataset: TransformedDataset, window_size: int) -> list:
    stats = ComparisonStats()
    out = bnl_passes(
        dataset.points, dataset.kernel.native_dominates, window_size, stats
    )
    return sorted(p.record.rid for p in out)


class TestBasics:
    def test_simple_case(self):
        d = numeric_dataset([(1, 5), (5, 1), (3, 3), (4, 4), (6, 6)])
        assert run_bnl(d, 10) == [0, 1, 2]

    def test_empty_input(self):
        d = numeric_dataset([])
        assert run_bnl(d, 10) == []

    def test_single_record(self):
        d = numeric_dataset([(1, 1)])
        assert run_bnl(d, 10) == [0]

    def test_duplicates_all_kept(self):
        d = numeric_dataset([(2, 2), (2, 2), (2, 2)])
        assert run_bnl(d, 10) == [0, 1, 2]

    def test_dominated_duplicates_dropped(self):
        d = numeric_dataset([(1, 1), (2, 2), (2, 2)])
        assert run_bnl(d, 10) == [0]

    def test_window_size_one(self):
        values = [(random.Random(1).randint(0, 20), random.Random(i).randint(0, 20)) for i in range(40)]
        d = numeric_dataset(values)
        assert run_bnl(d, 1) == run_bnl(d, 1000)

    def test_invalid_window(self):
        d = numeric_dataset([(1, 1)])
        with pytest.raises(AlgorithmError):
            list(bnl_passes(d.points, d.kernel.native_dominates, 0, ComparisonStats()))

    def test_each_point_emitted_once(self):
        rng = random.Random(3)
        values = [(rng.randint(0, 10), rng.randint(0, 10)) for _ in range(120)]
        d = numeric_dataset(values)
        stats = ComparisonStats()
        out = list(bnl_passes(d.points, d.kernel.native_dominates, 5, stats))
        rids = [p.record.rid for p in out]
        assert len(rids) == len(set(rids))

    def test_window_inserts_counted(self):
        d = numeric_dataset([(1, 5), (5, 1)])
        stats = ComparisonStats()
        list(bnl_passes(d.points, d.kernel.native_dominates, 10, stats))
        assert stats.window_inserts == 2


class TestMultiPass:
    @pytest.mark.parametrize("window", [1, 2, 3, 7, 50])
    def test_all_window_sizes_agree(self, window):
        rng = random.Random(11)
        values = [(rng.randint(0, 30), rng.randint(0, 30)) for _ in range(150)]
        d = numeric_dataset(values)
        expected = brute_force_skyline(d.schema, d.records)
        assert run_bnl(d, window) == expected

    def test_anti_correlated_tiny_window(self):
        # Anti-correlated data has a huge skyline -- many overflow passes.
        values = [(i, 100 - i) for i in range(100)]
        d = numeric_dataset(values)
        assert run_bnl(d, 3) == list(range(100))

    def test_algorithm_class(self, small_dataset, small_truth):
        algo = BlockNestedLoops(window_size=20)
        got = sorted(p.record.rid for p in algo.run(small_dataset))
        assert got == small_truth


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), window=st.integers(1, 20))
def test_bnl_matches_brute_force_property(seed, window):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=50)
    d = TransformedDataset(schema, records)
    got = run_bnl(d, window)
    assert got == brute_force_skyline(schema, records)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), window=st.integers(1, 10))
def test_bnl_m_dominance_superset_property(seed, window):
    """Stage-1-style BNL with m-dominance yields a superset of the true
    skyline (false positives only, never false negatives)."""
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=40)
    d = TransformedDataset(schema, records)
    stats = ComparisonStats()
    candidates = {
        p.record.rid
        for p in bnl_passes(d.points, d.kernel.m_dominates, window, stats)
    }
    assert candidates >= set(brute_force_skyline(schema, records))
