"""Tests for set-valued domains (:mod:`repro.posets.setvalued`)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_poset
from repro.exceptions import PosetError, UnknownValueError
from repro.posets.builder import antichain, chain, diamond
from repro.posets.generator import generate_poset
from repro.posets.setvalued import SetValuedDomain


class TestCanonicalDerivation:
    def test_diamond_isomorphism(self):
        dom = SetValuedDomain.from_poset(diamond())
        assert dom.verify_isomorphism()

    def test_chain_sets_nested(self):
        p = chain("abc")
        dom = SetValuedDomain.from_poset(p)
        assert dom.set_of("a") > dom.set_of("b") > dom.set_of("c")

    def test_antichain_singletons(self):
        dom = SetValuedDomain.from_poset(antichain("xyz"))
        sizes = {len(dom.set_of(v)) for v in "xyz"}
        assert sizes == {1}

    def test_dominates_matches_poset(self, medium_poset):
        dom = SetValuedDomain.from_poset(medium_poset)
        values = medium_poset.values
        for i in range(0, len(values), 5):
            for j in range(0, len(values), 7):
                if i == j:
                    continue
                assert dom.dominates(values[i], values[j]) == medium_poset.dominates(
                    values[i], values[j]
                )

    def test_set_of_ix_matches_set_of(self, medium_poset):
        dom = SetValuedDomain.from_poset(medium_poset)
        for i in range(len(medium_poset)):
            assert dom.set_of_ix(i) == dom.set_of(medium_poset.value(i))

    def test_taller_posets_have_larger_sets(self):
        """The Section 5.2 cost driver: height grows the sets."""
        short = SetValuedDomain.from_poset(
            generate_poset(num_nodes=200, height=3, num_trees=4, seed=1)
        )
        tall = SetValuedDomain.from_poset(
            generate_poset(num_nodes=200, height=10, num_trees=4, seed=1)
        )
        assert tall.average_set_size > short.average_set_size

    def test_sizes(self):
        dom = SetValuedDomain.from_poset(diamond())
        assert dom.max_set_size == 4  # a's set covers everything
        assert dom.average_set_size == pytest.approx((4 + 2 + 2 + 1) / 4)


class TestExplicitAssignment:
    def test_custom_sets(self):
        p = chain("ab")
        dom = SetValuedDomain(p, {"a": frozenset({1, 2}), "b": frozenset({1})})
        assert dom.dominates("a", "b")

    def test_incomplete_assignment_rejected(self):
        p = chain("ab")
        with pytest.raises(PosetError):
            SetValuedDomain(p, {"a": frozenset({1})})

    def test_extra_assignment_rejected(self):
        p = chain("ab")
        with pytest.raises(PosetError):
            SetValuedDomain(
                p,
                {"a": frozenset({1, 2}), "b": frozenset({1}), "c": frozenset()},
            )

    def test_unknown_value_raises(self):
        dom = SetValuedDomain.from_poset(diamond())
        with pytest.raises(UnknownValueError):
            dom.set_of("nope")


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_from_poset_always_isomorphic(seed):
    poset = random_poset(random.Random(seed))
    assert SetValuedDomain.from_poset(poset).verify_isomorphism()
