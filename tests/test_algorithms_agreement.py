"""Cross-algorithm agreement: every evaluator returns the exact skyline.

This is the library's strongest end-to-end guarantee: BNL (native
domains, the ground-truth-style baseline), BNL+, SFS, D&C, BBS+, SDC (all
ablation variants) and SDC+ must produce identical answer sets on random
mixed-domain datasets under every spanning-tree strategy, and all must
match the O(n^2) definition-level brute force.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline, random_mixed_dataset
from repro.algorithms.base import available_algorithms, get_algorithm
from repro.engine import SkylineEngine
from repro.exceptions import AlgorithmError
from repro.transform.dataset import TransformedDataset

ALL_POS_ALGORITHMS = ("bnl", "bnl+", "sfs", "dnc", "nn+", "bbs+", "sdc", "sdc+")


class TestRegistry:
    def test_all_registered(self):
        names = available_algorithms()
        for name in ALL_POS_ALGORITHMS + ("bbs",):
            assert name in names

    def test_unknown_algorithm(self):
        with pytest.raises(AlgorithmError):
            get_algorithm("quantum-skyline")

    def test_options_forwarded(self):
        algo = get_algorithm("bnl", window_size=7)
        assert algo.window_size == 7


class TestFixedWorkload:
    @pytest.mark.parametrize("name", ALL_POS_ALGORITHMS)
    def test_matches_brute_force(self, small_dataset, small_truth, name):
        algo = get_algorithm(name)
        got = sorted(p.record.rid for p in algo.run(small_dataset))
        assert got == small_truth

    @pytest.mark.parametrize("strategy", ["default", "minpc", "maxpc"])
    def test_strategies_dont_change_answers(
        self, small_workload, small_truth, strategy
    ):
        engine = SkylineEngine(
            small_workload.schema, small_workload.records, strategy=strategy
        )
        for name in ("bbs+", "sdc", "sdc+"):
            assert sorted(r.rid for r in engine.skyline(name)) == small_truth

    @pytest.mark.parametrize(
        "options",
        [
            {"restrict_categories": False},
            {"optimize_comparisons": False},
            {"progressive_output": False},
            {
                "restrict_categories": False,
                "optimize_comparisons": False,
                "progressive_output": False,
            },
        ],
    )
    def test_sdc_ablations_correct(self, small_dataset, small_truth, options):
        algo = get_algorithm("sdc", **options)
        assert sorted(p.record.rid for p in algo.run(small_dataset)) == small_truth

    def test_each_algorithm_emits_each_point_once(self, small_dataset):
        for name in ALL_POS_ALGORITHMS:
            rids = [p.record.rid for p in get_algorithm(name).run(small_dataset)]
            assert len(rids) == len(set(rids)), name

    def test_dynamic_index_same_answers(self, small_workload, small_truth):
        d = TransformedDataset(
            small_workload.schema,
            small_workload.records,
            bulk_load=False,
            max_entries=10,
        )
        for name in ("bbs+", "sdc", "sdc+"):
            got = sorted(p.record.rid for p in get_algorithm(name).run(d))
            assert got == small_truth, name


class TestEdgeCases:
    def test_empty_dataset(self):
        rng = random.Random(0)
        schema, _ = random_mixed_dataset(rng, n=1)
        d = TransformedDataset(schema, [])
        for name in ALL_POS_ALGORITHMS:
            assert list(get_algorithm(name).run(d)) == [], name

    def test_single_record(self):
        rng = random.Random(0)
        schema, records = random_mixed_dataset(rng, n=1)
        d = TransformedDataset(schema, records)
        for name in ALL_POS_ALGORITHMS:
            assert [p.record.rid for p in get_algorithm(name).run(d)] == [0], name

    def test_all_identical_records(self):
        rng = random.Random(0)
        schema, records = random_mixed_dataset(rng, n=1)
        clones = [
            type(records[0])(i, records[0].totals, records[0].partials)
            for i in range(12)
        ]
        d = TransformedDataset(schema, clones)
        for name in ALL_POS_ALGORITHMS:
            got = sorted(p.record.rid for p in get_algorithm(name).run(d))
            assert got == list(range(12)), name

    def test_pure_partial_schema(self):
        rng = random.Random(5)
        schema, records = random_mixed_dataset(rng, n=40, num_total=0)
        d = TransformedDataset(schema, records)
        expected = brute_force_skyline(schema, records)
        for name in ALL_POS_ALGORITHMS:
            got = sorted(p.record.rid for p in get_algorithm(name).run(d))
            assert got == expected, name

    def test_reachability_mode_schema(self):
        rng = random.Random(6)
        schema, records = random_mixed_dataset(rng, n=40, set_valued=False)
        d = TransformedDataset(schema, records)
        expected = brute_force_skyline(schema, records)
        for name in ALL_POS_ALGORITHMS:
            got = sorted(p.record.rid for p in get_algorithm(name).run(d))
            assert got == expected, name


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    num_total=st.integers(0, 2),
    num_partial=st.integers(1, 2),
    strategy=st.sampled_from(["default", "minpc", "maxpc", "random"]),
)
def test_agreement_property(seed, num_total, num_partial, strategy):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(
        rng, n=45, num_total=num_total, num_partial=num_partial
    )
    expected = brute_force_skyline(schema, records)
    engine = SkylineEngine(schema, records, strategy=strategy, rng=random.Random(seed))
    for name in ALL_POS_ALGORITHMS:
        got = sorted(r.rid for r in engine.skyline(name))
        assert got == expected, f"{name} with {strategy}"


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_paper_faithful_modes_may_overreport_but_never_drop(seed):
    """The paper-literal variants can only *add* false positives (missed
    eliminations) -- they can never lose a true skyline point."""
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=45, num_partial=2)
    expected = set(brute_force_skyline(schema, records))
    gate_engine = SkylineEngine(
        schema, records, strategy="random", faithful_gate=True, rng=random.Random(seed)
    )
    for name in ("sdc", "sdc+"):
        got = {r.rid for r in gate_engine.skyline(name)}
        assert got >= expected, name
    excl_engine = SkylineEngine(schema, records, strategy="random", rng=random.Random(seed))
    got = {
        r.rid for r in excl_engine.skyline("sdc+", faithful_category_exclusion=True)
    }
    assert got >= expected
