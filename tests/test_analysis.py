"""Tests for poset analysis (Dilworth/Mirsky/extensions)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_poset
from repro.posets.analysis import (
    chain_partition,
    comparability_ratio,
    is_antichain,
    is_chain,
    linear_extension,
    longest_chain,
    maximum_antichain,
    mirsky_decomposition,
    random_linear_extension,
    width,
)
from repro.posets.builder import antichain, chain, diamond, paper_example_poset
from repro.posets.generator import generate_poset
from repro.posets.poset import Poset


class TestBasics:
    def test_chain_measures(self):
        p = chain("abcde")
        assert width(p) == 1
        assert comparability_ratio(p) == 1.0
        assert longest_chain(p) == list("abcde")
        assert len(mirsky_decomposition(p)) == 5
        assert chain_partition(p) == [list("abcde")]

    def test_antichain_measures(self):
        p = antichain("abcd")
        assert width(p) == 4
        assert comparability_ratio(p) == 0.0
        assert len(longest_chain(p)) == 1
        assert mirsky_decomposition(p) == [list("abcd")]
        assert len(chain_partition(p)) == 4

    def test_diamond_measures(self):
        p = diamond()
        assert width(p) == 2
        assert len(longest_chain(p)) == 3
        assert sorted(maximum_antichain(p)) == ["b", "c"]

    def test_paper_poset(self):
        p = paper_example_poset()
        w = width(p)
        assert w == 5  # the five maximal values a..e are incomparable
        assert is_antichain(p, maximum_antichain(p))

    def test_empty_and_single(self):
        assert width(Poset([], [])) == 0
        assert maximum_antichain(Poset([], [])) == []
        assert longest_chain(Poset([], [])) == []
        assert width(Poset(["x"], [])) == 1

    def test_is_chain_is_antichain(self):
        p = diamond()
        assert is_chain(p, ["a", "b", "d"])
        assert not is_chain(p, ["b", "c"])
        assert is_antichain(p, ["b", "c"])
        assert not is_antichain(p, ["a", "d"])

    def test_comparability_ratio_monotone_in_density(self):
        sparse = generate_poset(
            num_nodes=100, height=4, num_trees=4, edge_probability=0.05, seed=1
        )
        dense = generate_poset(
            num_nodes=100, height=4, num_trees=4, edge_probability=0.9, seed=1
        )
        assert comparability_ratio(dense) > comparability_ratio(sparse)


class TestLinearExtensions:
    def test_deterministic_extension_respects_order(self, medium_poset):
        order = linear_extension(medium_poset)
        position = {v: k for k, v in enumerate(order)}
        for v, w in medium_poset.edges():
            assert position[v] < position[w]

    def test_random_extension_respects_order(self, medium_poset):
        order = random_linear_extension(medium_poset, random.Random(4))
        assert sorted(map(str, order)) == sorted(map(str, medium_poset.values))
        position = {v: k for k, v in enumerate(order)}
        for v, w in medium_poset.edges():
            assert position[v] < position[w]

    def test_random_extensions_vary(self, medium_poset):
        a = random_linear_extension(medium_poset, random.Random(1))
        b = random_linear_extension(medium_poset, random.Random(2))
        assert a != b


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_dilworth_duality_property(seed):
    """width == |maximum antichain| == |minimum chain partition|, the
    antichain is pairwise incomparable, the chains are chains and they
    partition the domain."""
    poset = random_poset(random.Random(seed))
    w = width(poset)
    anti = maximum_antichain(poset)
    chains = chain_partition(poset)
    assert len(anti) == w
    assert len(chains) == w
    assert is_antichain(poset, anti)
    covered = [v for c in chains for v in c]
    assert sorted(map(str, covered)) == sorted(map(str, poset.values))
    for c in chains:
        assert is_chain(poset, c)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_mirsky_property(seed):
    """Mirsky: minimal antichain cover size == longest chain length; each
    level bucket is an antichain."""
    poset = random_poset(random.Random(seed))
    decomposition = mirsky_decomposition(poset)
    if len(poset) == 0:
        assert decomposition == []
        return
    assert len(decomposition) == len(longest_chain(poset))
    for bucket in decomposition:
        assert is_antichain(poset, bucket)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_longest_chain_is_chain(seed):
    poset = random_poset(random.Random(seed))
    c = longest_chain(poset)
    assert is_chain(poset, c)
    # Consecutive elements strictly ordered top-down.
    for a, b in zip(c, c[1:]):
        assert poset.dominates(a, b)
