"""Sharded process-pool execution: partition, merge and resilience edges.

The cross-product parity suite lives in ``test_parallel_parity.py``;
this file covers the unit-level contracts -- partitioner mode selection,
the Lemma 4.2 representative prefilter, the ``ComparisonStats``
double-count guard, the bulk buffer promotion, and the worker-crash /
deadline / cancellation / budget behaviours of the executor.
"""

from __future__ import annotations

import random

import pytest

from repro.core.batch import BatchDominanceKernel, SkylineBuffer
from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.engine import SkylineEngine
from repro.exceptions import (
    ParallelError,
    ParallelFallbackWarning,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.parallel import (
    IncrementalMerger,
    ParallelConfig,
    ParallelSkylineExecutor,
    merge_local_skylines,
    parallel_skyline,
    partition_dataset,
    plan_tasks,
)
from repro.posets.builder import diamond
from repro.resilience import CancellationToken, QueryContext, ResourceBudget
from repro.resilience.chaos import FaultInjector
from repro.serving import QueryRequest, SkylineServer

KERNELS = ("python", "numpy")


def _poset_engine(n: int = 300, seed: int = 31, kernel: str = "python") -> SkylineEngine:
    rng = random.Random(seed)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 60), rng.randint(1, 60)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


def _numeric_engine(records, kernel: str = "python") -> SkylineEngine:
    schema = Schema([NumericAttribute("a", "min"), NumericAttribute("b", "min")])
    return SkylineEngine(schema, records, kernel=kernel)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
class TestParallelConfig:
    def test_coerce(self):
        config = ParallelConfig(workers=3)
        assert ParallelConfig.coerce(config) is config
        assert ParallelConfig.coerce(None) is None
        assert ParallelConfig.coerce(4).workers == 4

    def test_coerce_rejects_bool_and_junk(self):
        with pytest.raises(TypeError):
            ParallelConfig.coerce(True)
        with pytest.raises(TypeError):
            ParallelConfig.coerce("two")

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(mode="hash")
        with pytest.raises(ValueError):
            ParallelConfig(scheduler="fifo")
        with pytest.raises(ValueError):
            ParallelConfig(filter="maybe")
        with pytest.raises(ValueError):
            ParallelConfig(tasks_per_worker=0)
        with pytest.raises(ValueError):
            ParallelConfig(min_task_work=0)
        with pytest.raises(ValueError):
            ParallelConfig(board_reps=1)
        with pytest.raises(ValueError):
            ParallelConfig(filter_chunk=0)

    def test_default_workers_resolve_to_cpu_count(self):
        import os

        config = ParallelConfig()
        assert config.workers is None
        assert config.resolved_workers() == max(1, os.cpu_count() or 1)
        assert ParallelConfig(workers=3).resolved_workers() == 3


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------
class TestPartition:
    def test_tiny_dataset_runs_serially(self):
        engine = _poset_engine(n=20)
        partition = partition_dataset(engine.dataset, ParallelConfig(workers=4))
        assert partition.mode == "serial"
        assert partition.shards == ()
        assert partition.reason == "tiny-data"

    def test_shard_floor_routes_serial_with_reason(self):
        # One worker slot and a work estimate too light to amortise a
        # second task: explicit shard-floor routing, not silence.
        engine = _poset_engine(n=300)
        partition = partition_dataset(
            engine.dataset, ParallelConfig(workers=1, min_task_work=1e12)
        )
        assert partition.mode == "serial"
        assert partition.reason == "shard-floor"
        partition = partition_dataset(
            engine.dataset, ParallelConfig(workers=1, scheduler="static")
        )
        assert partition.mode == "serial"
        assert partition.reason == "shard-floor"

    def test_steal_overpartitions_beyond_worker_count(self):
        engine = _poset_engine(n=300)
        config = ParallelConfig(
            workers=2, min_shard_points=16, min_task_work=1.0, mode="grid"
        )
        plan = plan_tasks(engine.dataset, config)
        assert plan.serial_reason is None
        assert plan.slots == 2
        assert plan.tasks == 2 * config.tasks_per_worker
        assert not plan.calibrated
        partition = partition_dataset(engine.dataset, config)
        assert len(partition.shards) == plan.tasks

    def test_strata_mode_caps_tasks_at_stratum_count(self):
        # Strata are never split, so fine granularity in strata mode is
        # bounded by how many strata exist (here: 3).
        engine = _poset_engine(n=300)
        config = ParallelConfig(workers=2, min_shard_points=16, min_task_work=1.0)
        partition = partition_dataset(engine.dataset, config)
        assert partition.mode == "strata"
        strata = engine.dataset.stratification.strata
        assert 2 <= len(partition.shards) <= len(strata)

    def test_light_work_estimate_caps_task_count(self):
        # A huge min_task_work makes every query "light": the plan drops
        # to one task per slot instead of tasks_per_worker x slots.
        engine = _poset_engine(n=300)
        plan = plan_tasks(
            engine.dataset,
            ParallelConfig(workers=2, min_shard_points=16, min_task_work=1e12),
        )
        assert plan.tasks == 2

    def test_calibrated_estimator_feeds_task_plan(self):
        from repro.serving.admission import CostEstimator

        engine = _poset_engine(n=300)
        estimator = CostEstimator()
        estimator.observe(
            "sdc+", 300, {"m_dominance_point": 3_000_000}, seconds=0.5
        )
        plan = plan_tasks(
            engine.dataset,
            ParallelConfig(workers=2, min_shard_points=16, min_task_work=1.0),
            estimator,
        )
        assert plan.calibrated
        assert plan.estimated_comparisons > 0

    def test_static_scheduler_keeps_one_task_per_worker(self):
        engine = _poset_engine(n=300)
        partition = partition_dataset(
            engine.dataset, ParallelConfig(workers=4, scheduler="static")
        )
        assert len(partition.shards) <= 4

    def test_strata_are_never_split(self):
        # Fine-grained steal tasks must respect stratum boundaries --
        # within a stratum there is no dominance direction.
        engine = _poset_engine(n=300)
        config = ParallelConfig(workers=4, min_shard_points=2, min_task_work=1.0)
        partition = partition_dataset(engine.dataset, config)
        assert partition.mode == "strata"
        strata = engine.dataset.stratification.strata
        assert len(partition.shards) <= len(strata)
        position = {}
        for si, stratum in enumerate(strata):
            for p in stratum.points:
                position[id(p)] = si
        seen: set[int] = set()
        for shard in partition.shards:
            shard_strata = {
                position[id(engine.dataset.points[r])] for r in shard.rows
            }
            assert not (shard_strata & seen)
            seen |= shard_strata

    def test_strata_mode_on_poset_data(self):
        engine = _poset_engine(n=300)
        partition = partition_dataset(engine.dataset, ParallelConfig(workers=4))
        assert partition.mode == "strata"
        assert partition.ordered
        assert len(partition.shards) >= 2
        # every row exactly once
        rows = [r for s in partition.shards for r in s.rows]
        assert sorted(rows) == list(range(300))
        assert all(s.labels for s in partition.shards)

    def test_single_stratum_falls_back_to_grid(self):
        # All records share one poset value -> one stratum -> grid.
        poset = diamond()
        value = poset.value(0)
        schema = Schema(
            [NumericAttribute("a", "min"), PosetAttribute.set_valued("p", poset)]
        )
        rng = random.Random(5)
        records = [Record(i, (rng.randint(1, 99),), (value,)) for i in range(200)]
        engine = SkylineEngine(schema, records)
        partition = partition_dataset(engine.dataset, ParallelConfig(workers=2))
        assert partition.mode == "grid"
        assert partition.ordered

    def test_numeric_only_schema_uses_grid_even_when_strata_forced(self):
        rng = random.Random(9)
        records = [
            Record(i, (rng.randint(1, 99), rng.randint(1, 99))) for i in range(200)
        ]
        engine = _numeric_engine(records)
        partition = partition_dataset(
            engine.dataset, ParallelConfig(workers=2, mode="strata")
        )
        assert partition.mode == "grid"

    def test_grid_chunks_are_key_ranked(self):
        engine = _poset_engine(n=200)
        partition = partition_dataset(
            engine.dataset, ParallelConfig(workers=4, mode="grid")
        )
        assert partition.mode == "grid"
        points = engine.dataset.points
        previous_max = None
        for shard in partition.shards:
            keys = [points[r].key for r in shard.rows]
            if previous_max is not None:
                assert min(keys) >= previous_max
            previous_max = max(keys)


# ---------------------------------------------------------------------------
# Merge + representative prefilter
# ---------------------------------------------------------------------------
class TestMerge:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_empty_local_skylines_are_skipped(self, kernel):
        rng = random.Random(3)
        records = [
            Record(i, (rng.randint(1, 99), rng.randint(1, 99))) for i in range(40)
        ]
        engine = _numeric_engine(records, kernel=kernel)
        points = engine.dataset.points
        outcome = merge_local_skylines(engine.dataset, [[], [points[0]], []])
        assert outcome.points == [points[0]]
        assert outcome.eliminated == ()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_prefilter_eliminates_dominated_shard(self, kernel):
        # One best point plus strictly worse filler: the later shard's
        # entire local skyline is knocked out by shard 0's representative
        # (static scheduler -- merge-time prefilter; under steal mode
        # the filter board usually empties the shard *before* merge,
        # covered by TestFilterBoard).
        rng = random.Random(11)
        records = [Record(0, (0, 0))] + [
            Record(i, (rng.randint(5, 40), rng.randint(5, 40))) for i in range(1, 33)
        ]
        engine = _numeric_engine(records, kernel=kernel)
        config = ParallelConfig(
            workers=2, min_shard_points=8, mode="grid", scheduler="static"
        )
        with ParallelSkylineExecutor(engine.dataset, config) as executor:
            result = executor.run("bnl")
        assert result.parallel
        assert result.eliminated_shards == (1,)
        assert [p.record.rid for p in result.points] == [0]

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_incremental_merger_matches_one_shot(self, kernel):
        engine = _poset_engine(n=200, kernel=kernel)
        partition = partition_dataset(
            engine.dataset, ParallelConfig(workers=4, min_shard_points=8)
        )
        assert len(partition.shards) >= 2
        points = engine.dataset.points
        # Stand-in local skylines: every shard's raw rows (mutually
        # dominated rows make the merge do real elimination work).
        locals_ = [
            [points[r] for r in shard.rows] for shard in partition.shards
        ]
        one_stats = ComparisonStats()
        one_shot = merge_local_skylines(
            engine.dataset.query_view(stats=one_stats), locals_
        )
        inc_stats = ComparisonStats()
        sink: list = []
        merger = IncrementalMerger(
            engine.dataset.query_view(stats=inc_stats), sink=sink
        )
        for g, candidates in enumerate(locals_):
            merger.absorb(g, candidates)
        incremental = merger.outcome()
        assert [p.record.rid for p in incremental.points] == [
            p.record.rid for p in one_shot.points
        ]
        assert incremental.eliminated == one_shot.eliminated
        assert inc_stats.snapshot() == one_stats.snapshot()
        assert sink == incremental.points

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_duplicate_of_representative_survives_prefilter(self, kernel):
        # Two copies of the best vector in different shards: corner
        # strictness must keep the later shard alive, and the per-point
        # pass must then keep the duplicate (no strict dominance).
        records = [Record(0, (1, 1)), Record(1, (1, 1))] + [
            Record(i, (50 + i, 50 + i)) for i in range(2, 32)
        ]
        engine = _numeric_engine(records, kernel=kernel)
        points = engine.dataset.points
        outcome = merge_local_skylines(
            engine.dataset, [[points[0]], [points[1]]]
        )
        assert outcome.eliminated == ()
        assert {p.record.rid for p in outcome.points} == {0, 1}


# ---------------------------------------------------------------------------
# ComparisonStats guard + bulk promotion (satellites)
# ---------------------------------------------------------------------------
class TestStatsGuards:
    def test_merge_rejects_self(self):
        stats = ComparisonStats()
        with pytest.raises(ValueError, match="distinct objects"):
            stats.merge(stats)

    def test_merge_of_distinct_bundles_still_works(self):
        a, b = ComparisonStats(), ComparisonStats()
        b.m_dominance_point = 3
        a.merge(b)
        assert a.m_dominance_point == 3

    def test_add_snapshot(self):
        stats = ComparisonStats()
        stats.add_snapshot({"m_dominance_point": 5, "tuples_scanned": 2})
        stats.add_snapshot({"m_dominance_point": 1, "unknown_field_ignored": 9})
        assert stats.m_dominance_point == 6
        assert stats.tuples_scanned == 2


class TestBufferExtend:
    def test_extend_matches_sequential_appends(self):
        engine = _poset_engine(n=80, kernel="numpy")
        dataset = engine.dataset
        base = getattr(dataset.kernel, "wrapped", dataset.kernel)
        assert isinstance(base, BatchDominanceKernel)
        group = list(dataset.points[:20])
        one = SkylineBuffer(base)
        for p in group:
            one.append(p)
        bulk = SkylineBuffer.from_points(base, group)
        assert len(one) == len(bulk) == len(group)
        assert list(one) == list(bulk)
        # identical contents -> identical scan outcome and identical bill
        probe = dataset.points[25]
        before = base.stats.snapshot()
        outcome_one = one.scan_compare(probe)
        delta_one = base.stats.diff(before)
        before = base.stats.snapshot()
        outcome_bulk = bulk.scan_compare(probe)
        delta_bulk = base.stats.diff(before)
        assert outcome_one == outcome_bulk
        assert delta_one == delta_bulk


# ---------------------------------------------------------------------------
# Executor behaviour
# ---------------------------------------------------------------------------
class TestExecutor:
    def test_empty_dataset(self):
        engine = _numeric_engine([])
        result = parallel_skyline(engine.dataset, "bnl", ParallelConfig(workers=2))
        assert result.points == []
        assert result.mode == "serial"
        assert not result.parallel

    def test_closed_executor_raises(self):
        engine = _poset_engine(n=50)
        executor = ParallelSkylineExecutor(engine.dataset, ParallelConfig(workers=2))
        executor.close()
        with pytest.raises(ParallelError):
            executor.run("bnl")

    def test_budget_forces_serial_path(self):
        engine = _poset_engine(n=300)
        context = QueryContext(budget=ResourceBudget(max_answers=3))
        with ParallelSkylineExecutor(
            engine.dataset, ParallelConfig(workers=2)
        ) as executor:
            result = executor.run("sdc+", context=context, stats=ComparisonStats())
        assert not result.parallel
        assert result.mode == "serial"
        assert len(result.points) == 3

    def test_deadline_propagates_into_workers(self):
        engine = _poset_engine(n=400)
        context = QueryContext(deadline=1e-4)
        with ParallelSkylineExecutor(
            engine.dataset, ParallelConfig(workers=2)
        ) as executor:
            with pytest.raises(QueryTimeoutError) as info:
                executor.run("sdc+", context=context, stats=ComparisonStats())
        assert info.value.partial is not None
        assert not info.value.partial.complete

    def test_cancellation_is_polled(self):
        engine = _poset_engine(n=300)
        cancel = CancellationToken()
        cancel.cancel()
        context = QueryContext(cancel=cancel)
        with ParallelSkylineExecutor(
            engine.dataset, ParallelConfig(workers=2)
        ) as executor:
            with pytest.raises(QueryCancelledError):
                executor.run("sdc+", context=context, stats=ComparisonStats())

    def test_sink_receives_merged_answers(self):
        engine = _poset_engine(n=300)
        sink: list = []
        with ParallelSkylineExecutor(
            engine.dataset, ParallelConfig(workers=2)
        ) as executor:
            result = executor.run("sdc+", sink=sink, stats=ComparisonStats())
        assert result.parallel
        assert sink == result.points

    def test_counters_are_exact_sums(self):
        engine = _poset_engine(n=300, kernel="numpy")
        stats = ComparisonStats()
        with ParallelSkylineExecutor(
            engine.dataset, ParallelConfig(workers=2)
        ) as executor:
            result = executor.run("sdc+", stats=stats)
        assert result.parallel
        expected: dict[str, int] = {}
        for snapshot in result.worker_counters + [result.merge_counters]:
            for name, value in snapshot.items():
                expected[name] = expected.get(name, 0) + value
        aggregate = {k: v for k, v in result.counters.items() if v}
        assert aggregate == {k: v for k, v in expected.items() if v}
        assert stats.snapshot() == result.counters

    def test_counters_are_deterministic_run_to_run(self):
        # filter="static" pins the board to the parent's seed reps, so
        # steal-mode counters are bit-reproducible regardless of claim
        # timing (the CI comparison gate depends on this).
        engine = _poset_engine(n=300)
        with ParallelSkylineExecutor(
            engine.dataset, ParallelConfig(workers=2, filter="static")
        ) as executor:
            first = executor.run("sdc+", stats=ComparisonStats())
            second = executor.run("sdc+", stats=ComparisonStats())
        assert first.counters == second.counters
        assert [p.record.rid for p in first.points] == [
            p.record.rid for p in second.points
        ]

    def test_routed_serial_is_counted_not_silent(self):
        engine = _poset_engine(n=20)
        with ParallelSkylineExecutor(
            engine.dataset, ParallelConfig(workers=4)
        ) as executor:
            result = executor.run("sdc+", stats=ComparisonStats())
        assert not result.parallel
        assert result.routed_serial
        assert result.routed_reason == "tiny-data"
        assert not result.fallback

    def test_budget_routing_carries_reason(self):
        engine = _poset_engine(n=300)
        context = QueryContext(budget=ResourceBudget(max_answers=3))
        with ParallelSkylineExecutor(
            engine.dataset, ParallelConfig(workers=2)
        ) as executor:
            result = executor.run("sdc+", context=context, stats=ComparisonStats())
        assert result.routed_serial
        assert result.routed_reason == "budget"

    def test_stage_timings_and_steal_accounting(self):
        from repro.parallel.executor import STAGE_KEYS

        engine = _poset_engine(n=300)
        config = ParallelConfig(
            workers=2, min_shard_points=16, min_task_work=1.0, mode="grid"
        )
        with ParallelSkylineExecutor(engine.dataset, config) as executor:
            result = executor.run("sdc+", stats=ComparisonStats())
        assert result.parallel
        assert result.scheduler == "steal"
        assert result.tasks == len(result.shard_sizes)
        assert result.tasks > result.workers
        assert result.steals >= 0
        assert set(result.stage_seconds) == set(STAGE_KEYS)
        assert all(v >= 0.0 for v in result.stage_seconds.values())
        assert result.stage_seconds["compute"] > 0.0


# ---------------------------------------------------------------------------
# Cross-shard filter board
# ---------------------------------------------------------------------------
class TestFilterBoard:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_board_prunes_before_local_compute(self, kernel):
        # One best point plus strictly worse filler: shard 0's static
        # representative empties every later shard *during* compute.
        rng = random.Random(11)
        records = [Record(0, (0, 0))] + [
            Record(i, (rng.randint(5, 40), rng.randint(5, 40))) for i in range(1, 65)
        ]
        engine = _numeric_engine(records, kernel=kernel)
        config = ParallelConfig(
            workers=2, min_shard_points=8, mode="grid",
            filter="static", min_task_work=1.0,
        )
        with ParallelSkylineExecutor(engine.dataset, config) as executor:
            result = executor.run("bnl", stats=ComparisonStats())
        assert result.parallel
        assert result.scheduler == "steal"
        assert [p.record.rid for p in result.points] == [0]
        assert result.filter_board_checks > 0
        # Everything except the best point is strictly dominated by it,
        # and every cross-task survivor candidate gets board-pruned.
        assert result.filter_board_hits > 0
        assert result.counters["filter_board_hits"] == result.filter_board_hits

    @pytest.mark.parametrize("filter_mode", ["off", "static", "dynamic"])
    def test_filter_modes_preserve_answers(self, filter_mode):
        engine = _poset_engine(n=300)
        serial = [p.record.rid for p in engine.run_points("sdc+")]
        config = ParallelConfig(
            workers=2, min_shard_points=16, min_task_work=1.0,
            filter=filter_mode,
        )
        with ParallelSkylineExecutor(engine.dataset, config) as executor:
            result = executor.run("sdc+", stats=ComparisonStats())
        assert result.parallel
        assert [p.record.rid for p in result.points] == serial
        if filter_mode == "off":
            assert result.filter_board_checks == 0

    def test_prune_chunk_soundness(self):
        import numpy as np

        from repro.parallel.board import prune_chunk
        from repro.parallel.shard import CATEGORY_CODES

        rng = random.Random(17)
        records = [
            Record(i, (rng.randint(1, 99), rng.randint(1, 99))) for i in range(200)
        ]
        engine = _numeric_engine(records)
        points = engine.dataset.points
        rep = min(points, key=lambda p: p.key)
        vectors = np.array([p.vector for p in points])
        cats = np.array([CATEGORY_CODES[p.category] for p in points], dtype=np.uint8)
        alive = np.ones(len(points), dtype=bool)
        rep_vecs = np.array([rep.vector])
        rep_cats = np.array([CATEGORY_CODES[rep.category]])
        checks, hits = prune_chunk(vectors, cats, alive, rep_vecs, rep_cats)
        assert checks > 0 and hits == int((~alive).sum())
        # The representative itself (strictness) always survives ...
        assert alive[points.index(rep)]
        # ... and every pruned point is *really* dominated by rep.
        stats_view = engine.dataset.query_view(stats=ComparisonStats())
        for i, p in enumerate(points):
            if not alive[i]:
                assert stats_view.kernel.compare_dominance(p, rep) == 1

    def test_static_representatives_min_key(self):
        from repro.parallel.board import static_representatives
        from repro.parallel.shard import CATEGORY_BY_CODE

        engine = _poset_engine(n=100)
        points = engine.dataset.points
        rows = list(range(50))
        reps = static_representatives(points, rows)
        assert 1 <= len(reps) <= 2
        best = min(rows, key=lambda i: (points[i].key, i))
        cat_code, vector = reps[0]
        assert vector == points[best].vector
        assert CATEGORY_BY_CODE[cat_code] == points[best].category

    def test_dynamic_mode_publishes_reps(self):
        engine = _poset_engine(n=300)
        config = ParallelConfig(
            workers=2, min_shard_points=16, min_task_work=1.0, filter="dynamic"
        )
        with ParallelSkylineExecutor(engine.dataset, config) as executor:
            result = executor.run("sdc+", stats=ComparisonStats())
        assert result.parallel
        assert result.filter_reps_published >= 0  # timing-dependent count
        assert result.counters["filter_board_checks"] > 0


# ---------------------------------------------------------------------------
# Worker-crash chaos
# ---------------------------------------------------------------------------
class TestWorkerCrash:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_crash_degrades_to_serial_with_typed_warning(self, kernel):
        engine = _poset_engine(n=300, kernel=kernel)
        reference = [p.record.rid for p in engine.run_points("sdc+")]
        chaos = FaultInjector(seed=7, rate=1.0, max_faults=1)
        config = ParallelConfig(workers=2, chaos=chaos)
        with ParallelSkylineExecutor(engine.dataset, config) as executor:
            with pytest.warns(ParallelFallbackWarning):
                result = executor.run("sdc+", stats=ComparisonStats())
        assert result.fallback
        assert result.fallback_reason
        assert not result.parallel
        assert [p.record.rid for p in result.points] == reference

    def test_crash_without_fallback_raises(self):
        engine = _poset_engine(n=300)
        chaos = FaultInjector(seed=7, rate=1.0, max_faults=1)
        config = ParallelConfig(workers=2, chaos=chaos, fallback=False)
        with ParallelSkylineExecutor(engine.dataset, config) as executor:
            with pytest.raises(Exception) as info:
                executor.run("sdc+", stats=ComparisonStats())
        assert not isinstance(info.value, (QueryTimeoutError, QueryCancelledError))

    def test_executor_recovers_after_fallback(self):
        engine = _poset_engine(n=300)
        chaos = FaultInjector(seed=7, rate=1.0, max_faults=1)
        config = ParallelConfig(workers=2, chaos=chaos)
        with ParallelSkylineExecutor(engine.dataset, config) as executor:
            with pytest.warns(ParallelFallbackWarning):
                executor.run("sdc+", stats=ComparisonStats())
            # injector exhausted -> pool rebuilds and shards again
            result = executor.run("sdc+", stats=ComparisonStats())
        assert result.parallel
        assert not result.fallback


# ---------------------------------------------------------------------------
# Engine + server integration
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_run_parallel_matches_serial(self, kernel):
        engine = _poset_engine(n=300, kernel=kernel)
        serial = {r.rid for r in engine.run("sdc+")}
        sharded = {r.rid for r in engine.run("sdc+", parallel=2)}
        assert sharded == serial

    def test_reusable_executor(self):
        engine = _poset_engine(n=300)
        with engine.parallel_executor(ParallelConfig(workers=2)) as executor:
            a = executor.run("bnl", stats=ComparisonStats())
            b = executor.run("sdc+", stats=ComparisonStats())
        assert {p.record.rid for p in a.points} == {p.record.rid for p in b.points}


class TestServerIntegration:
    def test_server_routes_large_queries_to_parallel(self):
        engine = _poset_engine(n=300)
        reference = {r.rid for r in engine.run("sdc+")}
        server = SkylineServer(
            engine.dataset,
            workers=2,
            parallel=ParallelConfig(workers=2),
            parallel_threshold=100,
        )
        try:
            result = server.submit(QueryRequest(algorithm="sdc+")).result(timeout=60)
            assert {r.rid for r in result.points} == reference
            snap = server.metrics.snapshot()
            assert snap["parallel"]["queries"] == 1
            assert snap["parallel"]["fallbacks"] == 0
        finally:
            server.close()

    def test_server_threshold_keeps_small_queries_serial(self):
        engine = _poset_engine(n=300)
        server = SkylineServer(
            engine.dataset,
            workers=1,
            parallel=ParallelConfig(workers=2),
            parallel_threshold=10_000,
        )
        try:
            server.submit(QueryRequest(algorithm="bnl")).result(timeout=60)
            assert server.metrics.snapshot()["parallel"]["queries"] == 0
        finally:
            server.close()

    def test_server_insert_invalidates_shards(self):
        engine = _poset_engine(n=300)
        server = SkylineServer(
            engine.dataset,
            workers=1,
            parallel=ParallelConfig(workers=2),
            parallel_threshold=100,
        )
        try:
            server.submit(QueryRequest(algorithm="bnl")).result(timeout=60)
            server.insert(Record("fresh", (0, 0), (diamond().value(0),)))
            result = server.submit(QueryRequest(algorithm="bnl")).result(timeout=60)
            assert "fresh" in {r.rid for r in result.points}
            assert server.metrics.snapshot()["parallel"]["queries"] == 2
        finally:
            server.close()

    def test_server_counts_parallel_fallbacks(self):
        engine = _poset_engine(n=300)
        chaos = FaultInjector(seed=2025, rate=1.0, max_faults=1)
        server = SkylineServer(
            engine.dataset,
            workers=1,
            parallel=ParallelConfig(workers=2, chaos=chaos),
            parallel_threshold=100,
        )
        try:
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", ParallelFallbackWarning)
                result = server.submit(QueryRequest(algorithm="sdc+")).result(
                    timeout=60
                )
            reference = {r.rid for r in engine.run("sdc+")}
            assert {r.rid for r in result.points} == reference
            snap = server.metrics.snapshot()
            assert snap["parallel"]["queries"] == 1
            assert snap["parallel"]["fallbacks"] == 1
            assert snap["recovery"]["parallel_fallbacks"] == 1
        finally:
            server.close()

    def test_server_surfaces_steal_and_board_metrics(self):
        engine = _poset_engine(n=300)
        server = SkylineServer(
            engine.dataset,
            workers=1,
            parallel=ParallelConfig(
                workers=2, min_shard_points=16, min_task_work=1.0, mode="grid"
            ),
            parallel_threshold=100,
        )
        try:
            server.submit(QueryRequest(algorithm="sdc+")).result(timeout=60)
            snap = server.metrics.snapshot()["parallel"]
            assert snap["queries"] == 1
            assert snap["routed_serial"] == 0
            assert snap["tasks"] > 2
            assert snap["steals"] >= 0
            assert snap["filter_board_checks"] > 0
            assert set(snap["stage_seconds"]) == {
                "partition", "pool_setup", "compute", "steal_wait", "merge"
            }
        finally:
            server.close()

    def test_server_counts_routed_serial(self):
        # Below the executor's own shard floor but above the server's
        # parallel_threshold: the executor routes serial and the server
        # counts it explicitly.
        engine = _poset_engine(n=300)
        server = SkylineServer(
            engine.dataset,
            workers=1,
            parallel=ParallelConfig(workers=2, min_shard_points=200),
            parallel_threshold=100,
        )
        try:
            server.submit(QueryRequest(algorithm="sdc+")).result(timeout=60)
            snap = server.metrics.snapshot()["parallel"]
            assert snap["queries"] == 1
            assert snap["routed_serial"] == 1
            assert snap["fallbacks"] == 0
        finally:
            server.close()
