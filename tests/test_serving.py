"""Concurrent serving subsystem: server, admission, metrics, rwlock.

The cross-thread answer/counter parity guarantees have their own suite
(``tests/test_concurrent_parity.py``); this file covers the serving
machinery itself -- admission decisions, the reader-writer lock, the
metrics layer, handle semantics (result / partial / cancel / deadline),
index repair at admission, and the ``serve-bench`` workload replay.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.engine import SkylineEngine
from repro.exceptions import (
    AdmissionRejectedError,
    QueryCancelledError,
    QueryTimeoutError,
    ServingError,
)
from repro.posets.builder import diamond
from repro.resilience.chaos import corrupt_rtree
from repro.serving import (
    AdmissionController,
    CostEstimator,
    LatencyHistogram,
    QueryRequest,
    ReadWriteLock,
    ServerMetrics,
    SkylineServer,
    run_serve_bench,
)

ALL_ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+", "nn+", "dnc")


def _make_engine(kernel: str = "python", n: int = 120) -> SkylineEngine:
    rng = random.Random(23)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


# ---------------------------------------------------------------------------
# Reader-writer lock
# ---------------------------------------------------------------------------
class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        with lock.read_lock():
            with lock.read_lock():
                assert lock.readers == 2
        assert lock.readers == 0

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        with lock.write_lock():
            reader = threading.Thread(
                target=lambda: (lock.acquire_read(), order.append("read"),
                                lock.release_read())
            )
            reader.start()
            time.sleep(0.05)
            order.append("write-held")
        reader.join()
        assert order == ["write-held", "read"]

    def test_writer_preference_over_new_readers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        lock.acquire_read()

        def writer():
            with lock.write_lock():
                order.append("write")

        def late_reader():
            with lock.read_lock():
                order.append("late-read")

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # writer is now queued behind the initial reader
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        assert order == []  # both blocked: writer on us, reader on the writer
        lock.release_read()
        w.join()
        r.join()
        assert order == ["write", "late-read"]


# ---------------------------------------------------------------------------
# Latency histogram + metrics
# ---------------------------------------------------------------------------
class TestLatencyHistogram:
    def test_quantiles_bracket_observations(self):
        histogram = LatencyHistogram()
        for ms in (1, 2, 3, 4, 100):
            histogram.record(ms / 1000.0)
        assert histogram.count == 5
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(0.1)
        assert 0.001 <= histogram.quantile(0.5) <= 0.01
        assert histogram.quantile(0.99) <= 0.1
        assert histogram.quantile(0.5) <= histogram.quantile(0.9)

    def test_empty_snapshot(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p99_seconds"] == 0.0

    def test_overflow_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(1e9)  # beyond the last bound
        assert histogram.quantile(0.5) == pytest.approx(1e9)


class TestServerMetrics:
    def test_snapshot_shape_and_merge(self):
        metrics = ServerMetrics()
        stats = ComparisonStats()
        stats.m_dominance_point = 42
        metrics.on_submitted()
        metrics.on_admitted(deflected=False)
        metrics.on_enqueued()
        metrics.on_dequeued()
        metrics.on_started(0.001)
        metrics.on_finished("bnl", 0.01, "complete", stats=stats)
        snap = metrics.snapshot()
        assert snap["admission"]["admitted"] == 1
        assert snap["outcomes"]["completed"] == 1
        assert snap["queue"]["depth"] == 0
        assert snap["queue"]["max_depth"] == 1
        assert snap["comparison_totals"]["m_dominance_point"] == 42
        assert "bnl" in snap["latency_by_algorithm"]

    def test_to_json_roundtrip(self, tmp_path):
        metrics = ServerMetrics()
        path = tmp_path / "metrics.json"
        text = metrics.to_json(str(path))
        assert json.loads(text) == json.loads(path.read_text())


# ---------------------------------------------------------------------------
# Cost estimation + admission decisions
# ---------------------------------------------------------------------------
class TestCostEstimator:
    def test_cold_start_is_analytic(self):
        estimator = CostEstimator()
        estimate = estimator.estimate("bnl", 1000, 4)
        assert not estimate.calibrated
        assert estimate.seconds is None
        assert estimate.comparisons > 1000  # n * s(n, d) with s > 1
        assert estimate.model_ms > 0

    def test_calibration_tracks_observations(self):
        estimator = CostEstimator()
        counters = {"m_dominance_point": 5000, "tuples_scanned": 100}
        estimator.observe("bnl", 100, counters, seconds=0.25)
        assert estimator.profile_samples("bnl") == 1
        estimate = estimator.estimate("bnl", 200, 4)
        assert estimate.calibrated
        # first sample is adopted wholesale; estimates scale per
        # n*log2(n) work unit, not per record
        scale = (200 * math.log2(200)) / (100 * math.log2(100))
        assert estimate.comparisons == pytest.approx(5000 * scale)
        assert estimate.seconds == pytest.approx(0.25 * scale)
        # estimating at the observed size reproduces the observation
        same = estimator.estimate("bnl", 100, 4)
        assert same.comparisons == pytest.approx(5000)
        assert same.seconds == pytest.approx(0.25)
        # other algorithms remain cold
        assert not estimator.estimate("sfs", 200, 4).calibrated

    def test_calibration_conditions_on_dataset_size(self):
        # An observation taken on a small dataset must extrapolate
        # super-linearly to a large one: 100x the records costs 200x the
        # bill under the n*log2(n) normalization (log2 doubles from
        # n=100 to n=10_000), not 100x as per-record rates would say.
        estimator = CostEstimator()
        counters = {"m_dominance_point": 6000, "tuples_scanned": 100}
        estimator.observe("bnl", 100, counters, seconds=0.1)
        small = estimator.estimate("bnl", 100, 3)
        large = estimator.estimate("bnl", 10_000, 3)
        assert small.comparisons == pytest.approx(6000)
        assert large.comparisons == pytest.approx(6000 * 200)
        assert large.seconds == pytest.approx(0.1 * 200)
        assert large.model_ms > small.model_ms


class TestAdmissionController:
    def test_comparison_budget_rejects(self):
        engine = _make_engine()
        controller = AdmissionController()
        decision = controller.decide(
            QueryRequest(algorithm="bnl", max_comparisons=1), engine.dataset, 0
        )
        assert decision.action == "reject"
        assert decision.reason == "comparisons"

    def test_deadline_rejects_only_when_calibrated(self):
        engine = _make_engine()
        controller = AdmissionController()
        request = QueryRequest(algorithm="bnl", deadline=0.001)
        # cold start: wall-clock is unknown, the deadline cannot reject
        assert controller.decide(request, engine.dataset, 0).action == "admit"
        stats = ComparisonStats()
        stats.m_dominance_point = 100
        controller.observe("bnl", len(engine.dataset), stats, seconds=5.0)
        decision = controller.decide(request, engine.dataset, 0)
        assert decision.action == "reject"
        assert decision.reason == "deadline"

    def test_capacity_deflects_then_rejects(self):
        engine = _make_engine()
        controller = AdmissionController(max_pending=2, hard_limit=4)
        request = QueryRequest(algorithm="bnl")
        assert controller.decide(request, engine.dataset, 1).action == "admit"
        assert controller.decide(request, engine.dataset, 2).action == "deflect"
        rejected = controller.decide(request, engine.dataset, 4)
        assert rejected.action == "reject"
        assert rejected.reason == "capacity"

    def test_reject_policy_skips_deflection(self):
        engine = _make_engine()
        controller = AdmissionController(max_pending=1, overload_policy="reject")
        assert controller.decide(
            QueryRequest(), engine.dataset, 1
        ).action == "reject"

    def test_unknown_policy(self):
        with pytest.raises(ServingError):
            AdmissionController(overload_policy="drop")


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------
class TestSkylineServer:
    def test_answers_match_serial(self):
        engine = _make_engine()
        expected = {a: [r.rid for r in engine.skyline(a)] for a in ALL_ALGORITHMS}
        with engine.serve(workers=4) as server:
            handles = [server.submit(algorithm=a) for a in ALL_ALGORITHMS]
            for handle in handles:
                result = handle.result(timeout=60)
                assert result.complete
                rids = [p.record.rid for p in result.points]
                assert rids == expected[handle.request.algorithm]
        snap = server.metrics.snapshot()
        assert snap["outcomes"]["completed"] == len(ALL_ALGORITHMS)
        assert snap["admission"]["admitted"] == len(ALL_ALGORITHMS)

    def test_rejection_happens_without_any_comparison(self):
        engine = _make_engine()
        baseline = engine.stats.total_dominance_checks
        with engine.serve(workers=2) as server:
            with pytest.raises(AdmissionRejectedError) as info:
                server.submit(algorithm="bnl", max_comparisons=1)
            # neither the engine bundle nor the server aggregate moved:
            # the query was priced and refused, never executed
            assert engine.stats.total_dominance_checks == baseline
            assert server.stats.total_dominance_checks == 0
        assert info.value.reason == "comparisons"
        assert info.value.estimate > info.value.limit
        snap = server.metrics.snapshot()
        assert snap["admission"]["rejected"] == {"comparisons": 1}
        assert snap["outcomes"]["completed"] == 0

    def test_per_query_stats_and_aggregate(self):
        engine = _make_engine()
        serial = ComparisonStats()
        engine.skyline("bnl", stats=serial)
        with engine.serve(workers=2) as server:
            first = server.submit(algorithm="bnl")
            second = server.submit(algorithm="bnl")
            first.result(timeout=60)
            second.result(timeout=60)
        assert first.stats.snapshot() == serial.snapshot()
        assert second.stats.snapshot() == serial.snapshot()
        merged = ComparisonStats()
        merged += first.stats
        merged += second.stats
        assert server.stats.snapshot() == merged.snapshot()

    def test_deflection_demotes_but_still_runs(self):
        engine = _make_engine()
        with engine.serve(workers=1, max_pending=0, hard_limit=8) as server:
            handle = server.submit(algorithm="bnl")
            assert handle.deflected
            assert handle.result(timeout=60).complete
        assert server.metrics.snapshot()["admission"]["deflected"] == 1

    def test_submit_after_close_raises(self):
        engine = _make_engine()
        server = engine.serve(workers=1)
        server.close()
        with pytest.raises(ServingError):
            server.submit(algorithm="bnl")
        server.close()  # idempotent

    def test_request_and_kwargs_are_exclusive(self):
        engine = _make_engine()
        with engine.serve(workers=1) as server:
            with pytest.raises(ServingError):
                server.submit(QueryRequest(), algorithm="bnl")

    def test_cancel_queued_query_never_runs(self):
        engine = _make_engine()
        with engine.serve(workers=1) as server:
            server._rwlock.acquire_write()  # stall the single worker
            try:
                running = server.submit(algorithm="bnl")
                queued = server.submit(algorithm="bnl")
                time.sleep(0.05)  # worker dequeues `running`, blocks on lock
                assert queued.cancel()
            finally:
                server._rwlock.release_write()
            assert running.result(timeout=60).complete
            with pytest.raises(QueryCancelledError):
                queued.result(timeout=60)
            assert queued.outcome == "cancelled"
            assert queued.partial() == []
            assert queued.stats.total_dominance_checks == 0
            assert not queued.cancel()  # already finished

    def test_deadline_covers_queue_wait(self):
        engine = _make_engine()
        with engine.serve(workers=1) as server:
            server._rwlock.acquire_write()
            try:
                blocker = server.submit(algorithm="bnl")
                rushed = server.submit(algorithm="bnl", deadline=0.01)
                time.sleep(0.1)  # the deadline expires while queued
            finally:
                server._rwlock.release_write()
            assert blocker.result(timeout=60).complete
            with pytest.raises(QueryTimeoutError) as info:
                rushed.result(timeout=60)
            assert rushed.outcome == "timeout"
            assert info.value.partial.exhausted_reason == "deadline"
            assert rushed.stats.total_dominance_checks == 0
        assert server.metrics.snapshot()["outcomes"]["timeouts"] == 1

    def test_budget_truncates_to_partial_outcome(self):
        engine = _make_engine()
        with engine.serve(workers=1) as server:
            handle = server.submit(algorithm="bnl", max_answers=2)
            result = handle.result(timeout=60)
        assert not result.complete
        assert result.exhausted_reason == "answers"
        assert len(result.points) == 2
        assert handle.partial() == list(result.points)
        assert server.metrics.snapshot()["outcomes"]["partial"] == 1

    def test_result_wait_timeout_keeps_running(self):
        engine = _make_engine()
        with engine.serve(workers=1) as server:
            server._rwlock.acquire_write()
            try:
                handle = server.submit(algorithm="bnl")
                with pytest.raises(TimeoutError):
                    handle.result(timeout=0.01)
            finally:
                server._rwlock.release_write()
            assert handle.result(timeout=60).complete

    def test_updates_drain_and_apply(self):
        engine = _make_engine()
        with engine.serve(workers=2) as server:
            before = server.submit(algorithm="sdc+").result(timeout=60)
            dominator = Record("new", (0, 0), ("a",))  # diamond top value
            server.insert(dominator)
            after = server.submit(algorithm="sdc+").result(timeout=60)
            assert [p.record.rid for p in after.points] == ["new"]
            assert server.delete("new")
            assert not server.delete("no-such-rid")
            restored = server.submit(algorithm="sdc+").result(timeout=60)
            assert (
                sorted(p.record.rid for p in restored.points)
                == sorted(p.record.rid for p in before.points)
            )
        assert server.metrics.snapshot()["updates"] == 2

    def test_calibration_flows_from_completed_queries(self):
        engine = _make_engine()
        with engine.serve(workers=1) as server:
            server.submit(algorithm="bnl").result(timeout=60)
            assert server.admission.estimator.profile_samples("bnl") == 1
            # partial queries must not calibrate
            server.submit(algorithm="bnl", max_answers=1).result(timeout=60)
            assert server.admission.estimator.profile_samples("bnl") == 1

    def test_rebuild_on_detect_repairs_corrupted_tree(self):
        engine = _make_engine()
        expected = [r.rid for r in engine.skyline("bbs+")]
        corrupt_rtree(engine.dataset.index, seed=7)
        with engine.serve(workers=1, validate_on_admission=True) as server:
            result = server.submit(algorithm="bbs+").result(timeout=60)
            assert [p.record.rid for p in result.points] == expected
            server.submit(algorithm="bbs+").result(timeout=60)
        snap = server.metrics.snapshot()
        assert snap["recovery"]["index_repairs"] == 1  # repaired exactly once

    def test_server_over_raw_dataset(self):
        engine = _make_engine()
        with SkylineServer(engine.dataset, workers=1) as server:
            assert server.submit(algorithm="sfs").result(timeout=60).complete


# ---------------------------------------------------------------------------
# serve-bench
# ---------------------------------------------------------------------------
class TestServeBench:
    def test_report_and_artifact(self, tmp_path):
        path = tmp_path / "results" / "serve_bench.json"
        report = run_serve_bench(
            size=80,
            clients=3,
            queries_per_client=2,
            workers=2,
            seed=11,
            output=str(path),
        )
        assert report["errors"] == []
        assert report["queries"] == 6
        assert report["throughput_qps"] > 0
        assert report["latency"]["count"] == 6
        assert report["server"]["outcomes"]["completed"] == 6
        assert set(report["latency_by_algorithm"]) <= set(ALL_ALGORITHMS)
        on_disk = json.loads(path.read_text())
        assert on_disk["workload"]["seed"] == 11

    def test_seeded_request_stream_is_deterministic(self):
        runs = [
            run_serve_bench(size=60, clients=2, queries_per_client=3,
                            workers=2, seed=5)
            for _ in range(2)
        ]
        streams = [
            sorted((a, s["count"]) for a, s in r["latency_by_algorithm"].items())
            for r in runs
        ]
        assert streams[0] == streams[1]

    def test_cli_serve_bench(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "serve.json"
        code = main(
            [
                "serve-bench",
                "--size", "60",
                "--clients", "2",
                "--queries-per-client", "2",
                "--workers", "2",
                "--algorithms", "bnl", "sfs",
                "--output", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serve-bench" in out
        assert "p50" in out
        assert path.exists()


# ---------------------------------------------------------------------------
# Satellite: engine-level per-call stats override
# ---------------------------------------------------------------------------
class TestEngineStatsOverride:
    def test_skyline_stats_override_leaves_engine_untouched(self):
        engine = _make_engine()
        expected = [r.rid for r in engine.skyline("bnl")]
        baseline = engine.stats.total_dominance_checks
        override = ComparisonStats()
        rids = [r.rid for r in engine.skyline("bnl", stats=override)]
        assert rids == expected
        assert engine.stats.total_dominance_checks == baseline
        assert override.total_dominance_checks > 0

    def test_override_counters_match_engine_bundle_delta(self):
        first = _make_engine()
        before = first.stats.snapshot()
        first.skyline("sdc+")
        delta = first.stats.diff(before)
        second = _make_engine()
        override = ComparisonStats()
        second.skyline("sdc+", stats=override)
        assert override.snapshot() == delta

    def test_query_stats_override(self):
        engine = _make_engine()
        baseline = engine.stats.total_dominance_checks
        override = ComparisonStats()
        result = engine.query("bnl", max_answers=3, stats=override)
        assert len(result.points) == 3
        assert engine.stats.total_dominance_checks == baseline
        assert override.total_dominance_checks > 0
