"""Extra poset-layer edge cases and properties not covered elsewhere."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_poset
from repro.posets.builder import paper_example_poset
from repro.posets.classification import classify
from repro.posets.encoding import encode
from repro.posets.generator import generate_poset
from repro.posets.poset import Poset
from repro.posets.spanning_tree import default_spanning_forest, random_spanning_forest


class TestTransitiveReduction:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_reduction_is_minimal(self, seed):
        """Removing any edge of the reduced poset changes reachability."""
        poset = random_poset(random.Random(seed), max_nodes=9)
        reduced = poset.transitive_reduction()
        edges = list(reduced.edges())
        for drop in range(len(edges)):
            kept = [e for i, e in enumerate(edges) if i != drop]
            thinner = Poset(reduced.values, kept)
            v, w = edges[drop]
            assert not thinner.dominates(v, w)

    def test_reduction_idempotent(self, fig4_poset):
        once = fig4_poset.transitive_reduction()
        assert once.transitive_reduction() == once


class TestRestrict:
    def test_restrict_bridges_removed_middle(self):
        p = Poset("abc", [("a", "b"), ("b", "c")])
        sub = p.restrict(["a", "c"])
        assert sub.dominates("a", "c")  # transitivity survives projection
        assert sub.num_edges == 1

    def test_restrict_preserves_given_universe_order(self):
        p = paper_example_poset()
        sub = p.restrict(["j", "a", "f"])
        assert set(sub.values) == {"a", "f", "j"}
        assert sub.dominates("a", "f")
        assert not sub.comparable("a", "j")

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_restrict_order_agrees_with_parent(self, seed):
        rng = random.Random(seed)
        poset = random_poset(rng, max_nodes=10)
        chosen = [v for v in poset.values if rng.random() < 0.6]
        if not chosen:
            return
        sub = poset.restrict(chosen)
        for v in chosen:
            for w in chosen:
                if v != w:
                    assert sub.dominates(v, w) == poset.dominates(v, w)


class TestDuality:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_dual_swaps_maximal_minimal(self, seed):
        poset = random_poset(random.Random(seed))
        dual = poset.dual()
        assert set(dual.maximal_values) == set(poset.minimal_values)
        assert set(dual.minimal_values) == set(poset.maximal_values)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_dual_reverses_every_dominance(self, seed):
        poset = random_poset(random.Random(seed), max_nodes=9)
        dual = poset.dual()
        for i in range(len(poset)):
            for j in range(len(poset)):
                if i == j:
                    continue
                assert poset.dominates_ix(i, j) == dual.dominates(
                    dual.value(j), dual.value(i)
                )


class TestGeneratorConnectivity:
    def test_disconnected_without_connect_flag(self):
        p = generate_poset(
            num_nodes=60,
            height=3,
            num_trees=4,
            edge_iterations=0,
            connect=False,
            seed=3,
        )
        assert not p.is_connected()

    def test_connect_flag_joins_components(self):
        p = generate_poset(
            num_nodes=60,
            height=3,
            num_trees=4,
            edge_iterations=0,
            connect=True,
            seed=3,
        )
        assert p.is_connected()
        assert p.is_hasse()  # connection edges are level-respecting too

    def test_antichain_cannot_connect_gracefully(self):
        p = generate_poset(num_nodes=5, height=1, num_trees=1, seed=1)
        # Height-1 domains have no adjacent levels to bridge; the
        # generator returns the best effort instead of raising.
        assert len(p) == 5
        assert not p.is_connected()


class TestEncodingForestInteraction:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_false_negatives_touch_excluded_edges_only(self, seed):
        """Every dominance missed by the encoding involves a path through
        at least one excluded edge (soundness of the classification)."""
        rng = random.Random(seed)
        poset = random_poset(rng, max_nodes=10)
        forest = random_spanning_forest(poset, rng)
        enc = encode(poset, forest)
        cls = classify(forest)
        for i in range(len(poset)):
            for j in poset.descendants_ix(i):
                if not enc.contains_ix(i, j):
                    # Lemma 4.2 contrapositive: the dominator must be
                    # partially covering and the target partially covered.
                    assert not cls.is_completely_covering_ix(i)
                    assert not cls.is_completely_covered_ix(j)

    def test_default_forest_deterministic(self, medium_poset):
        a = default_spanning_forest(medium_poset)
        b = default_spanning_forest(medium_poset)
        assert a.parent_array == b.parent_array
