"""Tests for the dominance graph DG (Fig. 5, Lemmas 4.1 and 4.2).

The figure is an image in the paper, so the edge set is *verified* here:
a brute-force sweep over random posets, forests and value pairs checks
that every actual dominance respects the derived edges (Lemma 4.1) and
that dominance coincides with interval containment across bold edges
(Lemma 4.2).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_poset
from repro.core.categories import (
    BOLD_EDGES,
    DOMINANCE_EDGES,
    Category,
    can_dominate,
    dominators_of,
    dominators_of_set,
    is_bold,
    targets_of,
)
from repro.posets.classification import classify
from repro.posets.encoding import IntervalEncoding
from repro.posets.spanning_tree import random_spanning_forest


class TestEdgeSet:
    def test_expected_edges(self):
        expected = {
            (Category.CP, Category.CP),
            (Category.CP, Category.CC),
            (Category.CP, Category.PP),
            (Category.CP, Category.PC),
            (Category.CC, Category.CC),
            (Category.CC, Category.PC),
            (Category.PP, Category.PP),
            (Category.PP, Category.PC),
            (Category.PC, Category.PC),
        }
        assert DOMINANCE_EDGES == frozenset(expected)

    def test_reflexive(self):
        for cat in Category:
            assert can_dominate(cat, cat)

    def test_antisymmetric_without_loops(self):
        for src in Category:
            for dst in Category:
                if src is not dst and can_dominate(src, dst):
                    assert not can_dominate(dst, src)

    def test_transitive(self):
        for a in Category:
            for b in Category:
                for c in Category:
                    if can_dominate(a, b) and can_dominate(b, c):
                        assert can_dominate(a, c)

    def test_bold_edges_rule(self):
        for src, dst in DOMINANCE_EDGES:
            expected = src.completely_covering or dst.completely_covered
            assert is_bold(src, dst) == expected
        assert BOLD_EDGES <= DOMINANCE_EDGES

    def test_cc_pp_disconnected(self):
        """Section 4.7: no comparisons needed between (c,c) and (p,p)."""
        assert not can_dominate(Category.CC, Category.PP)
        assert not can_dominate(Category.PP, Category.CC)

    def test_cp_dominates_everything(self):
        assert targets_of(Category.CP) == frozenset(Category)

    def test_pc_dominated_by_everything(self):
        assert dominators_of(Category.PC) == frozenset(Category)

    def test_dominators_targets_duality(self):
        for src in Category:
            for dst in Category:
                assert (dst in targets_of(src)) == (src in dominators_of(dst))

    def test_dominators_of_set_union(self):
        subset = frozenset({Category.CC, Category.PP})
        assert dominators_of_set(subset) == dominators_of(Category.CC) | dominators_of(
            Category.PP
        )

    def test_category_of_flags(self):
        assert Category.of(True, True) is Category.CC
        assert Category.of(True, False) is Category.CP
        assert Category.of(False, True) is Category.PC
        assert Category.of(False, False) is Category.PP

    def test_str(self):
        assert str(Category.CP) == "(c,p)"


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_lemma_4_1_brute_force(seed):
    """Every actual dominance between values follows a DG edge."""
    rng = random.Random(seed)
    poset = random_poset(rng)
    forest = random_spanning_forest(poset, rng)
    cls = classify(forest)
    for i in range(len(poset)):
        for j in poset.descendants_ix(i):
            assert can_dominate(cls.category_ix(i), cls.category_ix(j)), (
                f"dominance {i}->{j} violates DG edge "
                f"{cls.category_ix(i)}->{cls.category_ix(j)}"
            )


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_lemma_4_2_brute_force(seed):
    """Across bold pairs, dominance == containment (m-dominance)."""
    rng = random.Random(seed)
    poset = random_poset(rng)
    forest = random_spanning_forest(poset, rng)
    cls = classify(forest)
    enc = IntervalEncoding(forest)
    n = len(poset)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if cls.is_completely_covering_ix(i) or cls.is_completely_covered_ix(j):
                assert poset.dominates_ix(i, j) == enc.strictly_contains_ix(i, j)
