"""Unit tests for :mod:`repro.posets.spanning_tree`."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import PosetError
from repro.posets.builder import antichain, chain, diamond, paper_example_poset
from repro.posets.builder import PAPER_FIG4_SPANNING_EDGES
from repro.posets.spanning_tree import (
    SpanningForest,
    default_spanning_forest,
    random_spanning_forest,
)


class TestConstruction:
    def test_default_keeps_first_parent(self):
        p = diamond()
        f = default_spanning_forest(p)
        assert f.parent_of(p.index("d")) == p.index("b")

    def test_roots_are_maximal(self, fig4_poset):
        f = default_spanning_forest(fig4_poset)
        assert set(f.roots) == set(fig4_poset.maximal_ix)

    def test_every_nonroot_has_one_parent(self, medium_poset):
        f = default_spanning_forest(medium_poset)
        for i in range(len(medium_poset)):
            if medium_poset.parents_ix(i):
                assert f.parent_of(i) in medium_poset.parents_ix(i)
            else:
                assert f.parent_of(i) == -1

    def test_wrong_length_rejected(self, diamond_poset):
        with pytest.raises(PosetError):
            SpanningForest(diamond_poset, [-1, 0])

    def test_nonparent_rejected(self, diamond_poset):
        p = diamond_poset
        bad = [-1, p.index("a"), p.index("a"), p.index("a")]
        # d's parent must be b or c, not a.
        with pytest.raises(PosetError):
            SpanningForest(p, bad)

    def test_missing_parent_for_nonroot_rejected(self, diamond_poset):
        p = diamond_poset
        bad = [-1, -1, p.index("a"), p.index("b")]
        with pytest.raises(PosetError):
            SpanningForest(p, bad)

    def test_from_edge_choice(self, fig4_poset):
        f = SpanningForest.from_edge_choice(fig4_poset, PAPER_FIG4_SPANNING_EDGES)
        assert f.contains_edge(fig4_poset.index("a"), fig4_poset.index("f"))
        assert not f.contains_edge(fig4_poset.index("b"), fig4_poset.index("f"))

    def test_from_edge_choice_duplicate_child_rejected(self, diamond_poset):
        with pytest.raises(PosetError):
            SpanningForest.from_edge_choice(
                diamond_poset,
                [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
            )

    def test_from_edge_choice_missing_child_rejected(self, diamond_poset):
        with pytest.raises(PosetError):
            SpanningForest.from_edge_choice(diamond_poset, [("a", "b"), ("a", "c")])

    def test_from_parent_map(self, diamond_poset):
        f = SpanningForest.from_parent_map(
            diamond_poset, {"b": "a", "c": "a", "d": "c"}
        )
        assert f.parent_of(diamond_poset.index("d")) == diamond_poset.index("c")


class TestStructure:
    def test_kept_plus_excluded_is_all_edges(self, fig4_poset):
        f = default_spanning_forest(fig4_poset)
        kept = set(
            (fig4_poset.index(v), fig4_poset.index(w)) for v, w in f.kept_edges()
        )
        excluded = set(f.excluded_edges_ix())
        all_edges = set(
            (fig4_poset.index(v), fig4_poset.index(w)) for v, w in fig4_poset.edges()
        )
        assert kept | excluded == all_edges
        assert not kept & excluded

    def test_postorder_children_before_parent(self, medium_poset):
        f = default_spanning_forest(medium_poset)
        pos = {node: k for k, node in enumerate(f.postorder())}
        for i in range(len(medium_poset)):
            for child in f.children_of(i):
                assert pos[child] < pos[i]

    def test_postorder_is_permutation(self, medium_poset):
        f = default_spanning_forest(medium_poset)
        assert sorted(f.postorder()) == list(range(len(medium_poset)))

    def test_tree_path_exists(self, diamond_poset):
        p = diamond_poset
        f = default_spanning_forest(p)  # keeps (a,b), (a,c), (b,d)
        assert f.tree_path_exists(p.index("a"), p.index("d"))
        assert f.tree_path_exists(p.index("b"), p.index("d"))
        assert not f.tree_path_exists(p.index("c"), p.index("d"))
        assert f.tree_path_exists(p.index("d"), p.index("d"))

    def test_antichain_forest_all_roots(self):
        p = antichain("xyz")
        f = default_spanning_forest(p)
        assert set(f.roots) == {0, 1, 2}

    def test_chain_forest_is_chain(self):
        p = chain("abc")
        f = default_spanning_forest(p)
        assert f.parent_array == (-1, 0, 1)


class TestRandomForest:
    def test_valid_and_deterministic(self, medium_poset):
        f1 = random_spanning_forest(medium_poset, random.Random(9))
        f2 = random_spanning_forest(medium_poset, random.Random(9))
        assert f1.parent_array == f2.parent_array
        for i in range(len(medium_poset)):
            parents = medium_poset.parents_ix(i)
            if parents:
                assert f1.parent_of(i) in parents

    def test_different_seeds_usually_differ(self, medium_poset):
        f1 = random_spanning_forest(medium_poset, random.Random(1))
        f2 = random_spanning_forest(medium_poset, random.Random(2))
        assert f1.parent_array != f2.parent_array
