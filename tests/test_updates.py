"""Tests for dynamic updates: R-tree deletion, dataset/engine churn.

The paper's Section 6 defers "efficient methods to update the domain
mappings and indexes when the data points are modified" to future work;
these tests cover the record-level half implemented here.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline, random_mixed_dataset
from repro.algorithms.base import get_algorithm
from repro.core.categories import Category
from repro.core.record import Record
from repro.engine import SkylineEngine
from repro.rtree.bulk import str_bulk_load
from repro.rtree.rstar import RStarTree
from repro.transform.dataset import TransformedDataset
from test_rtree import make_point, random_points


class TestRTreeDelete:
    def test_delete_existing(self):
        rng = random.Random(0)
        pts = random_points(100, 2, rng)
        tree = RStarTree(2, max_entries=6)
        tree.extend(pts)
        assert tree.delete(pts[37])
        tree.validate()
        assert len(tree) == 99
        assert all(p is not pts[37] for p in tree.points())

    def test_delete_missing_returns_false(self):
        rng = random.Random(1)
        pts = random_points(20, 2, rng)
        tree = RStarTree(2, max_entries=6)
        tree.extend(pts)
        stranger = make_point([1.0, 2.0], rid="ghost")
        assert not tree.delete(stranger)
        assert len(tree) == 20

    def test_delete_duplicate_vector_by_identity(self):
        a = make_point([5.0, 5.0], rid="a")
        b = make_point([5.0, 5.0], rid="b")
        tree = RStarTree(2, max_entries=4)
        tree.insert(a)
        tree.insert(b)
        assert tree.delete(a)
        remaining = list(tree.points())
        assert len(remaining) == 1 and remaining[0] is b

    def test_delete_everything(self):
        rng = random.Random(2)
        pts = random_points(60, 2, rng)
        tree = RStarTree(2, max_entries=5)
        tree.extend(pts)
        rng.shuffle(pts)
        for p in pts:
            assert tree.delete(p)
        assert len(tree) == 0
        tree.validate()
        tree.insert(make_point([0.0, 0.0]))  # still usable afterwards
        assert len(tree) == 1

    def test_root_shrinks(self):
        rng = random.Random(3)
        pts = random_points(300, 2, rng)
        tree = RStarTree(2, max_entries=5)
        tree.extend(pts)
        tall = tree.height
        for p in pts[:280]:
            tree.delete(p)
        tree.validate()
        assert tree.height < tall
        assert len(tree) == 20

    def test_delete_from_bulk_loaded(self):
        rng = random.Random(4)
        pts = random_points(200, 3, rng)
        tree = str_bulk_load(pts, 3, max_entries=10)
        for p in pts[:50]:
            assert tree.delete(p)
        assert len(tree) == 150
        assert sorted(p.rid for p in tree.points()) == sorted(
            p.rid for p in pts[50:]
        )

    def test_search_consistent_after_churn(self):
        rng = random.Random(5)
        pts = random_points(150, 2, rng)
        tree = RStarTree(2, max_entries=6)
        tree.extend(pts)
        alive = list(pts)
        for _ in range(60):
            victim = alive.pop(rng.randrange(len(alive)))
            tree.delete(victim)
        fresh = random_points(40, 2, random.Random(6))
        for p in fresh:
            tree.insert(p)
            alive.append(p)
        tree.validate()
        got = sorted(p.rid for p in tree.search((0.0, 0.0), (100.0, 100.0)))
        expected = sorted(p.rid for p in alive)
        assert got == expected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(5, 80), deletions=st.integers(1, 40))
def test_rtree_churn_property(seed, n, deletions):
    rng = random.Random(seed)
    pts = random_points(n, 2, rng, categories=list(Category))
    tree = RStarTree(2, max_entries=5)
    tree.extend(pts)
    alive = list(pts)
    for _ in range(min(deletions, n - 1)):
        victim = alive.pop(rng.randrange(len(alive)))
        assert tree.delete(victim)
        tree.validate()
    assert sorted(p.rid for p in tree.points()) == sorted(p.rid for p in alive)


class TestDatasetUpdates:
    def make(self, seed=0, n=50):
        rng = random.Random(seed)
        schema, records = random_mixed_dataset(rng, n=n)
        return schema, records, TransformedDataset(schema, records)

    def test_insert_updates_skyline(self):
        schema, records, d = self.make()
        d.index
        d.stratification
        extra = Record(999, records[0].totals, records[0].partials)
        d.insert_record(extra)
        expected = brute_force_skyline(schema, records + [extra])
        for name in ("bbs+", "sdc", "sdc+"):
            got = sorted(p.record.rid for p in get_algorithm(name).run(d))
            assert got == expected, name

    def test_delete_updates_skyline(self):
        schema, records, d = self.make(seed=1)
        d.index
        d.stratification
        truth = brute_force_skyline(schema, records)
        victim = truth[0]  # remove a skyline record: answers must change
        assert d.delete_record(victim)
        expected = brute_force_skyline(
            schema, [r for r in records if r.rid != victim]
        )
        for name in ("bbs+", "sdc", "sdc+"):
            got = sorted(p.record.rid for p in get_algorithm(name).run(d))
            assert got == expected, name

    def test_delete_missing(self):
        _, _, d = self.make(seed=2)
        assert not d.delete_record("no-such-rid")

    def test_insert_before_index_built(self):
        schema, records, d = self.make(seed=3)
        extra = Record(1000, records[0].totals, records[0].partials)
        d.insert_record(extra)
        assert len(d.index) == len(records) + 1

    def test_stratification_rebuild_on_new_stratum(self):
        """Deleting a whole stratum then inserting a point of that kind
        must still produce correct answers (rebuild path)."""
        schema, records, d = self.make(seed=4)
        strat = d.stratification
        target = strat.strata[-1]
        doomed = [p.record.rid for p in list(target.points)]
        survivors = [r for r in records if r.rid not in set(doomed)]
        resurrect = [r for r in records if r.rid in set(doomed)][0]
        for rid in doomed:
            d.delete_record(rid)
        revived = Record("back", resurrect.totals, resurrect.partials)
        d.insert_record(revived)
        expected = brute_force_skyline(schema, survivors + [revived])
        got = sorted(p.record.rid for p in get_algorithm("sdc+").run(d))
        assert got == expected

    def test_invalidate_rebuilds(self):
        _, _, d = self.make(seed=5)
        tree = d.index
        d.invalidate()
        assert d.index is not tree


class TestEngineUpdates:
    def test_engine_churn_end_to_end(self):
        rng = random.Random(7)
        schema, records = random_mixed_dataset(rng, n=60)
        engine = SkylineEngine(schema, records)
        engine.skyline("sdc+")  # force structures
        engine.delete(records[0].rid)
        engine.insert(Record("new", records[1].totals, records[1].partials))
        current = [r for r in records[1:]] + [
            Record("new", records[1].totals, records[1].partials)
        ]
        expected = brute_force_skyline(schema, current)
        assert sorted(r.rid for r in engine.skyline("sdc+")) == expected
        assert sorted(r.rid for r in engine.skyline("bnl")) == expected


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dataset_churn_property(seed):
    rng = random.Random(seed)
    schema, raw = random_mixed_dataset(rng, n=40)
    records = [Record(f"r{r.rid}", r.totals, r.partials) for r in raw]
    d = TransformedDataset(schema, records)
    d.index
    d.stratification
    alive = {r.rid: r for r in records}
    for step in range(12):
        if alive and rng.random() < 0.5:
            rid = rng.choice(list(alive))
            assert d.delete_record(rid)
            del alive[rid]
        else:
            template = records[rng.randrange(len(records))]
            rid = f"new-{seed}-{step}"
            record = Record(rid, template.totals, template.partials)
            d.insert_record(record)
            alive[rid] = record
    expected = brute_force_skyline(schema, list(alive.values()))
    for name in ("bbs+", "sdc+"):
        got = sorted(p.record.rid for p in get_algorithm(name).run(d))
        assert got == expected, name
