"""Reproducibility guarantees.

Comparison counts are the library's machine-independent benchmark
currency, so identical inputs must yield identical counters -- both
within a process and across interpreter invocations (a regression test
for iteration over id-hashed sets, which silently varied per process).
"""

from __future__ import annotations

import subprocess
import sys

from repro.algorithms.base import get_algorithm
from repro.transform.dataset import TransformedDataset
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

_PROBE = """
from repro.bench.harness import run_progressive
from repro.transform.dataset import TransformedDataset
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

wl = generate_workload(WorkloadConfig.default(data_size=400))
d = TransformedDataset(wl.schema, wl.records)
for name in ("bbs+", "sdc", "sdc+"):
    run = run_progressive(d, name)
    delta = run.final_delta
    print(name, delta["m_dominance_point"], delta["m_dominance_mbr"],
          delta["native_set"], delta["node_accesses"], run.skyline_size)
"""


def _counts_in_fresh_interpreter() -> str:
    result = subprocess.run(
        [sys.executable, "-c", _PROBE], capture_output=True, text=True, timeout=120
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_counts_identical_across_processes():
    assert _counts_in_fresh_interpreter() == _counts_in_fresh_interpreter()


def test_counts_identical_within_process():
    wl = generate_workload(WorkloadConfig.default(data_size=300))
    snapshots = []
    for _ in range(2):
        d = TransformedDataset(wl.schema, wl.records)
        d.index
        d.stratification
        before = d.stats.snapshot()
        for name in ("bbs+", "sdc", "sdc+"):
            list(get_algorithm(name).run(d))
        snapshots.append(d.stats.diff(before))
    assert snapshots[0] == snapshots[1]


def test_workload_generation_deterministic():
    a = generate_workload(WorkloadConfig.default(data_size=200))
    b = generate_workload(WorkloadConfig.default(data_size=200))
    assert a.records == b.records
    assert list(a.schema.partial_attrs[0].poset.edges()) == list(
        b.schema.partial_attrs[0].poset.edges()
    )
