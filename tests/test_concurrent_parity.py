"""Concurrent-vs-serial parity: answers AND counters, both kernels.

The serving layer's core guarantee: running N queries concurrently over
one shared engine produces, for every query, the *bit-identical* answer
sequence and per-query counter bundle that the same query produces
serially (fixed seeds everywhere).  Verified for all 8 algorithms on
both dominance backends, with concurrent submission from N client
threads -- and again under an injected batch-kernel fault, where exactly
one of the concurrent queries falls back to the python kernel mid-run
and must still return the exact skyline.
"""

from __future__ import annotations

import random
import threading
import warnings

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.engine import SkylineEngine
from repro.exceptions import KernelFallbackWarning
from repro.posets.builder import diamond
from repro.resilience.chaos import FaultInjector, inject_kernel_faults

ALL_ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+", "nn+", "dnc")
KERNELS = ("python", "numpy")
THREADS = 8


def _make_engine(kernel: str, n: int = 150) -> SkylineEngine:
    rng = random.Random(23)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


def _serial_baseline(kernel: str) -> dict[str, tuple[list, dict]]:
    """Per-algorithm (rids-in-emission-order, counter snapshot), serially."""
    engine = _make_engine(kernel)
    baseline = {}
    for algorithm in ALL_ALGORITHMS:
        stats = ComparisonStats()
        rids = [r.rid for r in engine.skyline(algorithm, stats=stats)]
        baseline[algorithm] = (rids, stats.snapshot())
    return baseline


def _submit_from_threads(server, requests):
    """Submit every request from its own client thread, concurrently."""
    handles = [None] * len(requests)
    barrier = threading.Barrier(len(requests))

    def client(i, kwargs):
        barrier.wait()
        handles[i] = server.submit(**kwargs)

    threads = [
        threading.Thread(target=client, args=(i, kwargs))
        for i, kwargs in enumerate(requests)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return handles


@pytest.mark.parametrize("kernel", KERNELS)
def test_concurrent_queries_match_serial_bitwise(kernel):
    baseline = _serial_baseline(kernel)
    engine = _make_engine(kernel)
    # two rounds of every algorithm, submitted by 16 concurrent clients
    requests = [{"algorithm": a} for a in ALL_ALGORITHMS] * 2
    with engine.serve(workers=THREADS) as server:
        handles = _submit_from_threads(server, requests)
        for handle in handles:
            result = handle.result(timeout=120)
            assert result.complete
            expected_rids, expected_counters = baseline[handle.request.algorithm]
            assert [p.record.rid for p in result.points] == expected_rids
            assert handle.stats.snapshot() == expected_counters
    # the server aggregate is exactly the merge of the per-query bundles
    merged = ComparisonStats()
    for handle in handles:
        merged += handle.stats
    assert server.stats.snapshot() == merged.snapshot()
    # concurrency never touches the engine-level bundle
    assert engine.stats.total_dominance_checks == 0


@pytest.mark.parametrize("seed", (7, 2025))
def test_concurrent_parity_under_kernel_fallback(seed):
    baseline = _serial_baseline("numpy")
    engine = _make_engine("numpy")
    injector = inject_kernel_faults(
        engine.dataset, FaultInjector(seed=seed, fail_after=50 + seed % 100)
    )
    requests = [{"algorithm": a} for a in ALL_ALGORITHMS]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", KernelFallbackWarning)
        with engine.serve(workers=THREADS) as server:
            handles = _submit_from_threads(server, requests)
            results = [h.result(timeout=120) for h in handles]
    # exactly one of the concurrent queries hit the fault and recovered
    assert injector.fired == 1
    fallbacks = [h for h, r in zip(handles, results) if r.fallback]
    assert len(fallbacks) == 1
    assert sum(h.stats.kernel_fallbacks for h in handles) == 1
    assert server.metrics.snapshot()["recovery"]["kernel_fallbacks"] == 1
    for handle, result in zip(handles, results):
        assert result.complete
        expected_rids, expected_counters = baseline[handle.request.algorithm]
        # answers are bit-identical even for the query that fell back
        assert [p.record.rid for p in result.points] == expected_rids
        if not result.fallback:
            # untouched queries also keep exact counter parity
            assert handle.stats.snapshot() == expected_counters


@pytest.mark.parametrize("kernel", KERNELS)
def test_concurrent_repeatability(kernel):
    """Two identical concurrent rounds produce identical per-query bills."""

    def round_snapshots():
        engine = _make_engine(kernel)
        with engine.serve(workers=4) as server:
            handles = _submit_from_threads(
                server, [{"algorithm": a} for a in ALL_ALGORITHMS]
            )
            for handle in handles:
                handle.result(timeout=120)
        return {
            h.request.algorithm: h.stats.snapshot() for h in handles
        }

    assert round_snapshots() == round_snapshots()
