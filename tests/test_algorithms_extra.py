"""Per-algorithm behavioural details beyond set-equality agreement."""

from __future__ import annotations

import random

import pytest

from conftest import brute_force_skyline, random_mixed_dataset
from repro.algorithms.base import get_algorithm
from repro.algorithms.bnl import bnl_passes
from repro.core.record import Record
from repro.core.schema import NumericAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.transform.dataset import TransformedDataset


def numeric_dataset(values, **kwargs):
    dims = len(values[0]) if values else 2
    schema = Schema([NumericAttribute(f"x{k}") for k in range(dims)])
    return TransformedDataset(schema, [Record(i, v) for i, v in enumerate(values)], **kwargs)


class TestBNLPlusStages:
    def test_stage1_candidates_superset_of_answers(self):
        rng = random.Random(3)
        schema, records = random_mixed_dataset(rng, n=60)
        d = TransformedDataset(schema, records)
        stats = ComparisonStats()
        stage1 = {
            p.record.rid
            for p in bnl_passes(d.points, d.kernel.m_dominates, 10**9, stats)
        }
        answers = set(brute_force_skyline(schema, records))
        assert stage1 >= answers

    def test_stage1_equals_answers_on_totally_ordered(self):
        rng = random.Random(4)
        values = [(rng.randint(0, 30), rng.randint(0, 30)) for _ in range(80)]
        d = numeric_dataset(values)
        stats = ComparisonStats()
        stage1 = sorted(
            p.record.rid
            for p in bnl_passes(d.points, d.kernel.m_dominates, 10**9, stats)
        )
        assert stage1 == brute_force_skyline(d.schema, d.records)


class TestSFS:
    def test_candidates_considered_in_key_order(self):
        """SFS correctness hinges on the presort: its window never holds
        a candidate with a key above a later input's.  Indirectly
        verified: with a monotone input SFS inserts exactly the
        m-skyline, nothing more."""
        rng = random.Random(5)
        schema, records = random_mixed_dataset(rng, n=60)
        d = TransformedDataset(schema, records)
        before = d.stats.snapshot()
        list(get_algorithm("sfs").run(d))
        delta = d.stats.diff(before)
        scratch = ComparisonStats()
        m_skyline = list(bnl_passes(d.points, d.kernel.m_dominates, 10**9, scratch))
        # SFS inserts exactly the m-skyline into its sorted filter window,
        # plus whatever its native post-pass inserts.
        post = ComparisonStats()
        saved = d.kernel.stats
        d.kernel.stats = post
        try:
            list(bnl_passes(m_skyline, d.kernel.native_dominates, 10**9, post))
        finally:
            d.kernel.stats = saved
        assert delta["window_inserts"] == len(m_skyline) + post.window_inserts


class TestDivideAndConquer:
    def test_all_identical_points(self):
        d = numeric_dataset([(5, 5)] * 30)
        got = sorted(p.record.rid for p in get_algorithm("dnc").run(d))
        assert got == list(range(30))

    def test_identical_in_one_dimension(self):
        d = numeric_dataset([(5, i) for i in range(40)])
        got = [p.record.rid for p in get_algorithm("dnc").run(d)]
        assert got == [0]

    def test_tiny_base_size(self):
        rng = random.Random(6)
        values = [(rng.randint(0, 20), rng.randint(0, 20)) for _ in range(100)]
        d = numeric_dataset(values)
        small = sorted(
            p.record.rid for p in get_algorithm("dnc", base_size=1).run(d)
        )
        assert small == brute_force_skyline(d.schema, d.records)

    def test_three_dims(self):
        rng = random.Random(7)
        values = [
            (rng.randint(0, 15), rng.randint(0, 15), rng.randint(0, 15))
            for _ in range(120)
        ]
        d = numeric_dataset(values)
        got = sorted(p.record.rid for p in get_algorithm("dnc").run(d))
        assert got == brute_force_skyline(d.schema, d.records)


class TestBBSPlusBehaviour:
    def test_prunes_relative_to_exhaustive_traversal(self):
        rng = random.Random(8)
        schema, records = random_mixed_dataset(rng, n=400)
        d1 = TransformedDataset(schema, records)
        d1.index
        before = d1.stats.snapshot()
        list(get_algorithm("bbs+").run(d1))
        accesses = d1.stats.diff(before)["node_accesses"]

        def count_nodes(node):
            if node.leaf:
                return 1
            return 1 + sum(count_nodes(c) for c in node.entries)

        assert accesses < count_nodes(d1.index.root)

    def test_emits_nothing_until_done(self):
        """BBS+ is blocking: the generator's first yield happens only
        after the traversal, i.e. after all node accesses."""
        rng = random.Random(9)
        schema, records = random_mixed_dataset(rng, n=200)
        d = TransformedDataset(schema, records)
        d.index
        gen = get_algorithm("bbs+").run(d)
        before = d.stats.node_accesses
        first = next(gen)
        accesses_at_first = d.stats.node_accesses - before
        rest = list(gen)
        accesses_total = d.stats.node_accesses - before
        assert first is not None
        assert accesses_at_first == accesses_total  # no I/O left after 1st

    def test_native_comparisons_only_in_update(self):
        """BBS+'s heap side is pure m-dominance: a totally-ordered
        dataset (no poset attrs) must produce zero set comparisons."""
        rng = random.Random(10)
        values = [(rng.randint(0, 30), rng.randint(0, 30)) for _ in range(150)]
        d = numeric_dataset(values)
        list(get_algorithm("bbs+").run(d))
        assert d.stats.native_set == 0


class TestSDCPlusBehaviour:
    def test_first_emission_before_any_pp_stratum(self):
        rng = random.Random(11)
        schema, records = random_mixed_dataset(rng, n=300)
        d = TransformedDataset(schema, records)
        covered_total = sum(
            1 for p in d.points if p.category.completely_covered
        )
        if covered_total == 0:
            pytest.skip("degenerate forest: no covered points")
        emitted = list(get_algorithm("sdc+").run(d))
        covered_prefix = 0
        for p in emitted:
            if not p.category.completely_covered:
                break
            covered_prefix += 1
        # every covered answer precedes every partially covered one
        assert all(
            p.category.completely_covered for p in emitted[:covered_prefix]
        )
        assert not any(
            p.category.completely_covered for p in emitted[covered_prefix:]
        )

    def test_stratum_count_matches_stratification(self):
        rng = random.Random(12)
        schema, records = random_mixed_dataset(rng, n=200)
        d = TransformedDataset(schema, records)
        strata = d.stratification
        assert sum(len(s) for s in strata) == len(records)
