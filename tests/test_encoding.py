"""Unit and property tests for the interval encoding (Section 4.3)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_poset
from repro.posets.builder import chain, diamond, paper_example_poset, random_tree
from repro.posets.encoding import IntervalEncoding, encode
from repro.posets.spanning_tree import (
    SpanningForest,
    default_spanning_forest,
    random_spanning_forest,
)


class TestPaperExamples:
    def test_example_4_2_intervals(self):
        """Example 4.2: spanning tree without edge (c, d) gives
        a=[1,4], b=[1,2], c=[3,3], d=[1,1]."""
        p = diamond()
        forest = SpanningForest.from_parent_map(p, {"b": "a", "c": "a", "d": "b"})
        enc = IntervalEncoding(forest)
        assert enc.mapping() == {"a": (1, 4), "b": (1, 2), "c": (3, 3), "d": (1, 1)}

    def test_example_4_2_c_does_not_mdominate_d(self):
        p = diamond()
        forest = SpanningForest.from_parent_map(p, {"b": "a", "c": "a", "d": "b"})
        enc = IntervalEncoding(forest)
        assert p.dominates("c", "d")
        assert not enc.contains("c", "d")  # the false-negative of Example 4.2

    def test_example_4_1_isomorphic_alternative(self):
        """Example 4.1's mapping is isomorphic; ours (Example 4.2) is the
        approximate ABJ one -- both must satisfy containment => dominance."""
        p = diamond()
        enc = encode(p)
        for v in p.values:
            for w in p.values:
                if v != w and enc.strictly_contains(v, w):
                    assert p.dominates(v, w)


class TestBasicProperties:
    def test_postorder_numbers_unique(self, medium_poset):
        enc = encode(medium_poset)
        posts = [enc.interval_ix(i)[1] for i in range(len(medium_poset))]
        assert sorted(posts) == list(range(1, len(medium_poset) + 1))

    def test_interval_low_le_high(self, medium_poset):
        enc = encode(medium_poset)
        for i in range(len(medium_poset)):
            lo, hi = enc.interval_ix(i)
            assert 1 <= lo <= hi <= len(medium_poset)

    def test_containment_reflexive(self, medium_poset):
        enc = encode(medium_poset)
        for i in range(len(medium_poset)):
            assert enc.contains_ix(i, i)
            assert not enc.strictly_contains_ix(i, i)

    def test_containment_iff_tree_path(self, medium_poset):
        forest = default_spanning_forest(medium_poset)
        enc = IntervalEncoding(forest)
        n = len(medium_poset)
        for i in range(n):
            for j in range(n):
                assert enc.contains_ix(i, j) == forest.tree_path_exists(i, j)

    def test_normalized_equivalent_to_containment(self, medium_poset):
        enc = encode(medium_poset)
        n = len(medium_poset)
        for i in range(0, n, 3):
            for j in range(0, n, 2):
                ni, nj = enc.normalized_ix(i), enc.normalized_ix(j)
                pareto = ni[0] <= nj[0] and ni[1] <= nj[1]
                assert pareto == enc.contains_ix(i, j)

    def test_tree_poset_encoding_is_exact(self):
        """For hierarchical domains (trees) the paper notes false
        positives can be avoided entirely: containment == dominance."""
        p = random_tree(25, rng=random.Random(4))
        enc = encode(p)
        for i in range(len(p)):
            for j in range(len(p)):
                if i != j:
                    assert enc.strictly_contains_ix(i, j) == p.dominates_ix(i, j)

    def test_chain_nested_intervals(self):
        p = chain("abcd")
        enc = encode(p)
        intervals = [enc.interval(v) for v in "abcd"]
        for outer, inner in zip(intervals, intervals[1:]):
            assert outer[0] <= inner[0] and inner[1] <= outer[1]

    def test_domain_size(self, medium_poset):
        assert encode(medium_poset).domain_size == len(medium_poset)

    def test_fig4_known_false_negative(self):
        """With the paper's spanning tree, d dominates h but the edge
        (d, h) is excluded, so f(d) must not contain f(h)."""
        from repro.posets.builder import PAPER_FIG4_SPANNING_EDGES

        p = paper_example_poset()
        forest = SpanningForest.from_edge_choice(p, PAPER_FIG4_SPANNING_EDGES)
        enc = IntervalEncoding(forest)
        assert p.dominates("d", "h")
        assert not enc.contains("d", "h")
        assert enc.contains("c", "h")  # kept edge


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_soundness_containment_implies_dominance(seed):
    """Domain mapping property: f(v) contains f(v') => v dominates v',
    for arbitrary posets and arbitrary spanning forests."""
    rng = random.Random(seed)
    poset = random_poset(rng)
    forest = random_spanning_forest(poset, rng)
    enc = IntervalEncoding(forest)
    n = len(poset)
    for i in range(n):
        for j in range(n):
            if i != j and enc.contains_ix(i, j):
                assert poset.dominates_ix(i, j)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_kept_edges_always_contained(seed):
    """The domain mapping property's converse direction on kept edges:
    every spanning edge (v, v') satisfies f(v) contains f(v')."""
    rng = random.Random(seed)
    poset = random_poset(rng)
    forest = random_spanning_forest(poset, rng)
    enc = IntervalEncoding(forest)
    for v, w in forest.kept_edges():
        assert enc.contains(v, w)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_encoding_injective(seed):
    rng = random.Random(seed)
    poset = random_poset(rng)
    enc = encode(poset)
    intervals = [enc.interval_ix(i) for i in range(len(poset))]
    assert len(set(intervals)) == len(intervals)
