"""Unit tests for :mod:`repro.posets.poset`."""

from __future__ import annotations

import pytest

from repro.exceptions import CyclicPosetError, PosetError, UnknownValueError
from repro.posets.builder import antichain, chain, diamond
from repro.posets.poset import Poset


class TestConstruction:
    def test_basic(self):
        p = Poset("ab", [("a", "b")])
        assert len(p) == 2
        assert p.num_edges == 1

    def test_values_preserved_in_order(self):
        p = Poset(["x", "y", "z"], [])
        assert p.values == ("x", "y", "z")

    def test_duplicate_values_rejected(self):
        with pytest.raises(PosetError):
            Poset(["a", "a"], [])

    def test_duplicate_edges_deduplicated(self):
        p = Poset("ab", [("a", "b"), ("a", "b")])
        assert p.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(CyclicPosetError):
            Poset("a", [("a", "a")])

    def test_two_cycle_rejected(self):
        with pytest.raises(CyclicPosetError):
            Poset("ab", [("a", "b"), ("b", "a")])

    def test_long_cycle_rejected_and_reported(self):
        with pytest.raises(CyclicPosetError) as exc:
            Poset("abcd", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")])
        assert exc.value.cycle is not None
        assert len(exc.value.cycle) >= 3

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(UnknownValueError):
            Poset("ab", [("a", "q")])
        with pytest.raises(UnknownValueError):
            Poset("ab", [("q", "a")])

    def test_empty_poset(self):
        p = Poset([], [])
        assert len(p) == 0
        assert p.height == 0
        assert p.is_connected()

    def test_contains(self):
        p = Poset("ab", [])
        assert "a" in p and "q" not in p

    def test_equality_and_hash(self):
        p1 = Poset("ab", [("a", "b")])
        p2 = Poset("ab", [("a", "b")])
        p3 = Poset("ab", [])
        assert p1 == p2
        assert hash(p1) == hash(p2)
        assert p1 != p3
        assert p1 != "not a poset"


class TestDominance:
    def test_direct_edge(self, diamond_poset):
        assert diamond_poset.dominates("a", "b")
        assert not diamond_poset.dominates("b", "a")

    def test_transitive_path(self, diamond_poset):
        assert diamond_poset.dominates("a", "d")

    def test_incomparable(self, diamond_poset):
        assert not diamond_poset.dominates("b", "c")
        assert not diamond_poset.dominates("c", "b")
        assert not diamond_poset.comparable("b", "c")

    def test_dominance_is_strict(self, diamond_poset):
        assert not diamond_poset.dominates("a", "a")

    def test_leq_reflexive(self, diamond_poset):
        assert diamond_poset.leq("a", "a")
        assert diamond_poset.leq("d", "a")
        assert not diamond_poset.leq("a", "d")

    def test_comparable_includes_equal(self, diamond_poset):
        assert diamond_poset.comparable("b", "b")

    def test_unknown_value(self, diamond_poset):
        with pytest.raises(UnknownValueError):
            diamond_poset.dominates("a", "zz")

    def test_descendants_and_ancestors(self, diamond_poset):
        assert diamond_poset.descendants("a") == frozenset("bcd")
        assert diamond_poset.descendants("d") == frozenset()
        assert diamond_poset.ancestors("d") == frozenset("abc")
        assert diamond_poset.ancestors("a") == frozenset()

    def test_dominance_consistent_with_descendants(self, medium_poset):
        p = medium_poset
        for i in range(0, len(p), 7):
            for j in range(0, len(p), 5):
                expected = j in p.descendants_ix(i)
                assert p.dominates_ix(i, j) == expected


class TestStructure:
    def test_maximal_minimal(self, diamond_poset):
        assert diamond_poset.maximal_values == ("a",)
        assert diamond_poset.minimal_values == ("d",)

    def test_levels_diamond(self, diamond_poset):
        levels = {
            diamond_poset.value(i): lvl for i, lvl in enumerate(diamond_poset.levels)
        }
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_height(self, diamond_poset):
        assert diamond_poset.height == 3

    def test_levels_longest_path(self):
        # a->b->d and a->d directly: level of d is the longest path, 2.
        p = Poset("abd", [("a", "b"), ("b", "d"), ("a", "d")])
        assert p.levels[p.index("d")] == 2

    def test_antichain_structure(self):
        p = antichain("abc")
        assert p.height == 1
        assert set(p.maximal_values) == set("abc")
        assert set(p.minimal_values) == set("abc")
        assert not p.is_connected()
        assert p.is_tree()

    def test_chain_structure(self):
        p = chain("abc")
        assert p.is_total_order()
        assert p.is_tree()
        assert p.is_connected()
        assert p.height == 3

    def test_diamond_not_total_order(self, diamond_poset):
        assert not diamond_poset.is_total_order()
        assert not diamond_poset.is_tree()
        assert diamond_poset.is_connected()

    def test_topological_order_parents_first(self, medium_poset):
        pos = {node: k for k, node in enumerate(medium_poset.topological_order)}
        for v, w in medium_poset.edges():
            assert pos[medium_poset.index(v)] < pos[medium_poset.index(w)]

    def test_edges_roundtrip(self, diamond_poset):
        assert sorted(diamond_poset.edges()) == [
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
        ]


class TestDerivedPosets:
    def test_transitive_reduction_removes_shortcut(self):
        p = Poset("abc", [("a", "b"), ("b", "c"), ("a", "c")])
        reduced = p.transitive_reduction()
        assert reduced.num_edges == 2
        assert reduced.dominates("a", "c")
        assert not p.is_hasse()
        assert reduced.is_hasse()

    def test_transitive_reduction_preserves_order(self, medium_poset):
        reduced = medium_poset.transitive_reduction()
        for i in range(0, len(medium_poset), 9):
            for j in range(0, len(medium_poset), 6):
                assert reduced.dominates_ix(i, j) == medium_poset.dominates_ix(i, j)

    def test_dual_reverses_dominance(self, diamond_poset):
        d = diamond_poset.dual()
        assert d.dominates("d", "a")
        assert not d.dominates("a", "d")
        assert set(d.maximal_values) == {"d"}

    def test_dual_involution(self, diamond_poset):
        assert diamond_poset.dual().dual() == diamond_poset

    def test_restrict_induced_order(self, diamond_poset):
        sub = diamond_poset.restrict(["a", "d"])
        assert len(sub) == 2
        assert sub.dominates("a", "d")

    def test_restrict_keeps_incomparability(self, diamond_poset):
        sub = diamond_poset.restrict(["b", "c"])
        assert not sub.comparable("b", "c")
