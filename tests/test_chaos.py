"""Fault-injection (chaos) suite: seeded failures, typed errors, recovery.

CI runs this file once per seed in ``CHAOS_SEEDS`` (the chaos smoke job
sets ``REPRO_CHAOS_SEED``); locally every test runs over all three.
"""

from __future__ import annotations

import os
import random
import warnings

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.engine import SkylineEngine
from repro.exceptions import (
    KernelError,
    KernelFallbackWarning,
    RTreeError,
    SchemaError,
)
from repro.posets.builder import diamond
from repro.resilience.chaos import (
    FaultInjector,
    corrupt_rtree,
    inject_kernel_faults,
    malform_records,
)

_FIXED_SEEDS = (7, 101, 2025)
_ENV_SEED = os.environ.get("REPRO_CHAOS_SEED")
CHAOS_SEEDS = (int(_ENV_SEED),) if _ENV_SEED else _FIXED_SEEDS

ALL_ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+", "nn+", "dnc")


def _make_engine(kernel: str) -> SkylineEngine:
    rng = random.Random(31)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(150)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


@pytest.fixture(scope="module")
def reference_skyline_rids():
    return sorted(r.rid for r in _make_engine("python").skyline("sdc+"))


# ---------------------------------------------------------------------------
# Batch-kernel faults: python fallback recovers the exact skyline
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_numpy_fault_falls_back_to_exact_answer(
    seed, algorithm, reference_skyline_rids
):
    engine = _make_engine("numpy")
    injector = inject_kernel_faults(
        engine.dataset, FaultInjector(seed=seed, fail_after=1 + seed % 40)
    )
    with pytest.warns(KernelFallbackWarning):
        result = engine.query(algorithm)
    assert injector.fired == 1
    assert result.fallback
    assert result.complete
    assert engine.stats.kernel_fallbacks == 1
    assert sorted(p.record.rid for p in result) == reference_skyline_rids


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_fallback_disabled_reraises(seed):
    engine = _make_engine("numpy")
    inject_kernel_faults(engine.dataset, FaultInjector(seed=seed, fail_after=5))
    with pytest.raises(KernelError) as info:
        engine.query("sdc+", fallback=False)
    assert info.value.partial is not None
    assert info.value.partial.exhausted_reason == "kernel"


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_python_kernel_fault_has_no_fallback(seed):
    engine = _make_engine("python")
    inject_kernel_faults(engine.dataset, FaultInjector(seed=seed, fail_after=5))
    with pytest.raises(KernelError) as info:
        engine.query("sdc+")
    assert info.value.partial is not None


def test_injection_is_deterministic():
    sites = []
    for _ in range(2):
        engine = _make_engine("numpy")
        injector = inject_kernel_faults(
            engine.dataset, FaultInjector(seed=7, fail_after=12)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", KernelFallbackWarning)
            engine.query("sdc+")
        sites.append((injector.calls, tuple(injector.sites)))
    assert sites[0] == sites[1]


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_rate_mode_is_seed_deterministic(seed):
    def run():
        injector = FaultInjector(seed=seed, rate=0.05, max_faults=3)
        fired_at = []
        for i in range(200):
            try:
                injector.maybe_fail("site")
            except KernelError:
                fired_at.append(i)
        return fired_at

    assert run() == run()


# ---------------------------------------------------------------------------
# R-tree corruption: validate() must detect it with a typed error
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_corrupt_rtree_detected(seed):
    engine = _make_engine("python")
    tree = engine.dataset.index
    tree.validate()  # sane before corruption
    description = corrupt_rtree(tree, seed=seed)
    assert description
    with pytest.raises(RTreeError):
        tree.validate()


# ---------------------------------------------------------------------------
# Malformed records: typed SchemaError at validation, never a traceback
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_malformed_records_rejected(seed):
    poset = diamond()
    schema = Schema(
        [NumericAttribute("a", "min"), PosetAttribute.set_valued("p", poset)]
    )
    for record in malform_records(seed=seed):
        with pytest.raises(SchemaError):
            schema.validate_record(record.totals, record.partials)


def test_malform_records_kinds():
    records = malform_records(seed=0)
    assert len(records) == 4
    with pytest.raises(KernelError):
        malform_records(kinds=("no-such-kind",))
