"""Fault-injection (chaos) suite: seeded failures, typed errors, recovery.

CI runs this file once per seed in ``CHAOS_SEEDS`` (the chaos smoke job
sets ``REPRO_CHAOS_SEED``); locally every test runs over all three.
"""

from __future__ import annotations

import os
import random
import warnings

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.engine import SkylineEngine
from repro.exceptions import (
    KernelError,
    KernelFallbackWarning,
    RTreeError,
    SchemaError,
)
from repro.posets.builder import diamond
from repro.resilience.chaos import (
    FaultInjector,
    corrupt_rtree,
    inject_kernel_faults,
    inject_update_faults,
    malform_records,
)

_FIXED_SEEDS = (7, 101, 2025)
_ENV_SEED = os.environ.get("REPRO_CHAOS_SEED")
CHAOS_SEEDS = (int(_ENV_SEED),) if _ENV_SEED else _FIXED_SEEDS

ALL_ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+", "nn+", "dnc")


def _make_engine(kernel: str) -> SkylineEngine:
    rng = random.Random(31)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(150)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


@pytest.fixture(scope="module")
def reference_skyline_rids():
    return sorted(r.rid for r in _make_engine("python").skyline("sdc+"))


# ---------------------------------------------------------------------------
# Batch-kernel faults: python fallback recovers the exact skyline
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_numpy_fault_falls_back_to_exact_answer(
    seed, algorithm, reference_skyline_rids
):
    engine = _make_engine("numpy")
    injector = inject_kernel_faults(
        engine.dataset, FaultInjector(seed=seed, fail_after=1 + seed % 40)
    )
    with pytest.warns(KernelFallbackWarning):
        result = engine.query(algorithm)
    assert injector.fired == 1
    assert result.fallback
    assert result.complete
    assert engine.stats.kernel_fallbacks == 1
    assert sorted(p.record.rid for p in result) == reference_skyline_rids


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_fallback_disabled_reraises(seed):
    engine = _make_engine("numpy")
    inject_kernel_faults(engine.dataset, FaultInjector(seed=seed, fail_after=5))
    with pytest.raises(KernelError) as info:
        engine.query("sdc+", fallback=False)
    assert info.value.partial is not None
    assert info.value.partial.exhausted_reason == "kernel"


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_python_kernel_fault_has_no_fallback(seed):
    engine = _make_engine("python")
    inject_kernel_faults(engine.dataset, FaultInjector(seed=seed, fail_after=5))
    with pytest.raises(KernelError) as info:
        engine.query("sdc+")
    assert info.value.partial is not None


def test_injection_is_deterministic():
    sites = []
    for _ in range(2):
        engine = _make_engine("numpy")
        injector = inject_kernel_faults(
            engine.dataset, FaultInjector(seed=7, fail_after=12)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", KernelFallbackWarning)
            engine.query("sdc+")
        sites.append((injector.calls, tuple(injector.sites)))
    assert sites[0] == sites[1]


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_rate_mode_is_seed_deterministic(seed):
    def run():
        injector = FaultInjector(seed=seed, rate=0.05, max_faults=3)
        fired_at = []
        for i in range(200):
            try:
                injector.maybe_fail("site")
            except KernelError:
                fired_at.append(i)
        return fired_at

    assert run() == run()


# ---------------------------------------------------------------------------
# R-tree corruption: validate() must detect it with a typed error
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_corrupt_rtree_detected(seed):
    engine = _make_engine("python")
    tree = engine.dataset.index
    tree.validate()  # sane before corruption
    description = corrupt_rtree(tree, seed=seed)
    assert description
    with pytest.raises(RTreeError):
        tree.validate()


# ---------------------------------------------------------------------------
# Malformed records: typed SchemaError at validation, never a traceback
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_malformed_records_rejected(seed):
    poset = diamond()
    schema = Schema(
        [NumericAttribute("a", "min"), PosetAttribute.set_valued("p", poset)]
    )
    for record in malform_records(seed=seed):
        with pytest.raises(SchemaError):
            schema.validate_record(record.totals, record.partials)


def test_malform_records_kinds():
    records = malform_records(seed=0)
    assert len(records) == 4
    with pytest.raises(KernelError):
        malform_records(kinds=("no-such-kind",))


# ---------------------------------------------------------------------------
# Update-time faults: an update either completes or restores the exact
# pre-update state (transactional insert_record / delete_record)
# ---------------------------------------------------------------------------
def _dataset_fingerprint(dataset) -> tuple:
    """Everything an update could corrupt, in one comparable value."""
    return (
        [r.rid for r in dataset.records],
        [p.record.rid for p in dataset.points],
        dataset.index.size,
        dataset.stratification.num_strata,
        sorted(r.rid for r in [p.record for p in _skyline_points(dataset)]),
    )


def _skyline_points(dataset):
    from repro.algorithms.base import get_algorithm

    return list(get_algorithm("sdc+").run(dataset))


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("fail_after", (1, 2))  # pre-index / pre-strata site
def test_insert_fault_restores_pre_update_state(seed, fail_after):
    engine = _make_engine("python")
    dataset = engine.dataset
    _ = dataset.index, dataset.stratification  # build so both sites are live
    before = _dataset_fingerprint(dataset)
    injector = inject_update_faults(
        dataset, FaultInjector(seed=seed, fail_after=fail_after)
    )
    record = Record("chaos-insert", (1, 1), ("b",))
    with pytest.raises(KernelError):
        dataset.insert_record(record)
    assert injector.fired == 1
    assert injector.sites[0].startswith("dataset.insert_record.")
    assert _dataset_fingerprint(dataset) == before
    # the injector is spent (max_faults=1): the retry must now succeed
    dataset.insert_record(record)
    assert dataset.points[-1].record.rid == "chaos-insert"
    assert dataset.index.size == len(dataset.points)
    assert dataset.delete_record("chaos-insert")
    assert _dataset_fingerprint(dataset) == before


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("fail_after", (1, 2))
def test_delete_fault_restores_pre_update_state(seed, fail_after):
    engine = _make_engine("python")
    dataset = engine.dataset
    _ = dataset.index, dataset.stratification
    victim = dataset.points[seed % len(dataset.points)].record.rid
    before = _dataset_fingerprint(dataset)
    injector = inject_update_faults(
        dataset, FaultInjector(seed=seed, fail_after=fail_after)
    )
    with pytest.raises(KernelError):
        dataset.delete_record(victim)
    assert injector.fired == 1
    assert injector.sites[0].startswith("dataset.delete_record.")
    assert _dataset_fingerprint(dataset) == before
    # spent injector: the delete now goes through and stays consistent
    assert dataset.delete_record(victim)
    assert victim not in {p.record.rid for p in dataset.points}
    assert dataset.index.size == len(dataset.points)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_update_fault_through_server_keeps_serving(seed):
    """A failed server-side update leaves concurrent queries unharmed."""
    from repro.serving import SkylineServer

    engine = _make_engine("python")
    expected = sorted(r.rid for r in engine.skyline("sdc+"))
    injector = inject_update_faults(
        engine.dataset, FaultInjector(seed=seed, fail_after=1)
    )
    with SkylineServer(engine.dataset, workers=2) as server:
        with pytest.raises(KernelError):
            server.insert(Record("chaos", (1, 1), ("b",)))
        assert injector.fired == 1
        result = server.submit(algorithm="sdc+").result(timeout=60)
        assert sorted(p.record.rid for p in result.points) == expected
    assert server.metrics.snapshot()["updates"] == 0  # nothing committed
