"""Repository-wide quality gates.

* every public module, class and function in :mod:`repro` carries a
  docstring (deliverable (e) of the reproduction);
* module layout matches DESIGN.md's inventory;
* no module accidentally shadows a standard-library name that matters.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

SRC = pathlib.Path(repro.__file__).parent
REPO = SRC.parent.parent


def _all_modules():
    out = []
    for info in pkgutil.walk_packages([str(SRC)], prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        out.append(info.name)
    return sorted(out)


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        if not (inspect.getdoc(obj) or "").strip():
            undocumented.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    inspect.getdoc(getattr(obj, attr_name)) or ""
                ).strip():
                    # getdoc walks the MRO: inherited contracts count.
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"


def test_expected_subpackages_exist():
    for package in (
        "repro.core",
        "repro.posets",
        "repro.rtree",
        "repro.transform",
        "repro.algorithms",
        "repro.workloads",
        "repro.queries",
        "repro.bench",
    ):
        assert importlib.import_module(package) is not None


def test_design_document_mentions_every_experiment_bench():
    design = (REPO / "DESIGN.md").read_text()
    bench_dir = REPO / "benchmarks"
    for bench in bench_dir.glob("test_fig*.py"):
        assert bench.name in design, f"{bench.name} missing from DESIGN.md"


def test_readme_quickstart_names_real_api():
    readme = (REPO / "README.md").read_text()
    for symbol in ("NumericAttribute", "PosetAttribute", "SkylineEngine", "skyline"):
        assert symbol in readme
        assert hasattr(repro, symbol)


def test_experiments_doc_covers_every_figure():
    """EXPERIMENTS.md must discuss every registered paper figure."""
    from repro.bench.experiments import EXPERIMENTS

    doc = (REPO / "EXPERIMENTS.md").read_text()
    for exp_id, experiment in EXPERIMENTS.items():
        if exp_id.startswith("fig"):
            assert experiment.paper_ref in doc, f"{experiment.paper_ref} missing"


def test_experiments_doc_headline_counts_match_current_code():
    """The headline fig10a comparison counts quoted in EXPERIMENTS.md are
    regenerated and compared — documentation numbers must never go stale
    against the deterministic counters."""
    from repro.bench.experiments import run_experiment

    result = run_experiment("fig10a", data_size=2500)
    doc = (REPO / "EXPERIMENTS.md").read_text().replace(" ", " ")

    def fmt(n: int) -> str:
        return f"{n:,}".replace(",", " ")

    for label in ("SDC", "SDC+"):
        delta = result.runs[label].final_delta
        checks = (
            delta["m_dominance_point"] + delta["native_set"] + delta["native_numeric"]
        )
        assert fmt(checks) in doc, f"{label} checks {checks} not in EXPERIMENTS.md"
        assert fmt(delta["native_set"]) in doc, f"{label} set-cmps stale"
