"""Tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "x.json", "--algorithm", "magic"])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99x"])


class TestCommands:
    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "sdc+" in out and "bnl" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Budget" in out
        assert "Worse" not in out  # dominated hotel must be pruned

    def test_generate_then_query(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        assert (
            main(
                [
                    "generate",
                    str(path),
                    "--size",
                    "120",
                    "--poset-nodes",
                    "24",
                    "--poset-height",
                    "3",
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-workload"
        assert len(payload["records"]) == 120

        assert main(["query", str(path), "--algorithm", "sdc+", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "skyline records out of 120" in out

    def test_query_all_algorithms_agree(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        main(["generate", str(path), "--size", "80", "--poset-nodes", "20", "--poset-height", "3"])
        capsys.readouterr()
        sizes = set()
        for algorithm in ("bnl", "bbs+", "sdc", "sdc+"):
            main(["query", str(path), "--algorithm", algorithm, "--limit", "0"])
            out = capsys.readouterr().out
            sizes.add(out.splitlines()[0].split()[0])
        assert len(sizes) == 1

    def test_query_stats_flag(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        main(["generate", str(path), "--size", "50", "--poset-nodes", "20", "--poset-height", "3"])
        capsys.readouterr()
        main(["query", str(path), "--stats"])
        assert "ComparisonStats" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "fig10a", "--size", "150", "--metric", "checks"]) == 0
        out = capsys.readouterr().out
        assert "fig10a" in out
        assert "dominance-check milestones" in out
        assert "SDC+" in out

    def test_experiment_time_metric(self, capsys):
        assert main(["experiment", "fig12c", "--size", "120", "--metric", "time"]) == 0
        out = capsys.readouterr().out
        assert "time-to-output milestones" in out
        assert "SDC+-MinPC" in out

    def test_skyband(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        main(["generate", str(path), "--size", "80", "--poset-nodes", "20", "--poset-height", "3"])
        capsys.readouterr()
        assert main(["skyband", str(path), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "2-skyband:" in out

    def test_subspace(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        main(["generate", str(path), "--size", "80", "--poset-nodes", "20", "--poset-height", "3"])
        capsys.readouterr()
        assert main(["subspace", str(path), "t0", "p0"]) == 0
        out = capsys.readouterr().out
        assert "subspace [t0, p0]:" in out

    def test_explain(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        main(["generate", str(path), "--size", "80", "--poset-nodes", "20", "--poset-height", "3"])
        capsys.readouterr()
        assert main(["explain", str(path), "--algorithm", "sdc+"]) == 0
        out = capsys.readouterr().out
        assert '"records": 80' in out
        assert '"progressiveness"' in out

    def test_layers(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        main(["generate", str(path), "--size", "80", "--poset-nodes", "20", "--poset-height", "3"])
        capsys.readouterr()
        assert main(["layers", str(path), "--max-layers", "3"]) == 0
        out = capsys.readouterr().out
        assert "layer 1:" in out
        assert "layer 3:" in out
