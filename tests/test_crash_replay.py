"""Kill-point chaos matrix: real process crashes, recovery audits.

Each cell forks a workload child that dies at an armed kill-point
(``os._exit`` mid-WAL-append, pre-fsync, mid-snapshot-rename or
mid-replay), then recovers the durability directory and checks the
acknowledgement contract.  The full matrix is cheap (<1s) because the
cells are tiny; CI additionally runs ``repro crash-replay`` with the
default sizes.
"""

from __future__ import annotations

import pytest

from repro.durability.crashreplay import (
    CRASH_EXIT_CODE,
    _cell_workload,
    run_crash_replay,
)
from repro.resilience.chaos import KILL_POINTS, CrashInjector


class TestCrashInjector:
    def test_unarmed_site_never_fires(self):
        crash = CrashInjector("wal.append.mid-write", fail_after=1)
        crash.maybe_crash("snapshot.mid-rename")  # different site: no-op

    def test_kill_points_cover_all_layers(self):
        assert set(KILL_POINTS) == {
            "wal.append.mid-write",
            "wal.append.pre-fsync",
            "snapshot.mid-rename",
            "recovery.mid-replay",
        }


class TestWorkloadDeterminism:
    def test_plan_is_reproducible_across_calls(self):
        # Parent and forked children regenerate the workload from the
        # seed instead of pickling it; the plans must agree exactly.
        schema_a, records_a, plan_a = _cell_workload(7, 30, 10)
        schema_b, records_b, plan_b = _cell_workload(7, 30, 10)
        assert [r.rid for r in records_a] == [r.rid for r in records_b]
        assert [op for op, _ in plan_a] == [op for op, _ in plan_b]
        for (op_a, arg_a), (op_b, arg_b) in zip(plan_a, plan_b):
            if op_a == "insert":
                assert arg_a.rid == arg_b.rid
                assert arg_a.totals == arg_b.totals
            else:
                assert arg_a == arg_b

    def test_different_seeds_differ(self):
        _, _, plan_a = _cell_workload(7, 30, 10)
        _, _, plan_b = _cell_workload(2025, 30, 10)
        assert [op for op, _ in plan_a] != [op for op, _ in plan_b] or [
            getattr(arg, "rid", arg) for _, arg in plan_a
        ] != [getattr(arg, "rid", arg) for _, arg in plan_b]


class TestCrashReplayMatrix:
    def test_full_matrix_passes(self, tmp_path):
        report = run_crash_replay(
            seeds=(7,), n=30, ops=10, workdir=tmp_path,
            out=tmp_path / "report.json",
        )
        assert report["passed"], [
            (c["kill_point"], c["problems"])
            for c in report["cells"]
            if not c["pass"]
        ]
        assert len(report["cells"]) == len(KILL_POINTS)
        assert (tmp_path / "report.json").exists()
        by_kp = {c["kill_point"]: c for c in report["cells"]}
        for cell in report["cells"]:
            # The child must die from the armed crash, not accidentally.
            assert cell["exit_code"] == CRASH_EXIT_CODE
            # The acknowledgement contract.
            assert cell["acked"] <= cell["recovered"] <= cell["submitted"]
            assert cell["recovered"] <= cell["acked"] + 1
            assert cell["fsck_clean"]
        torn = by_kp["wal.append.mid-write"]
        # A torn record is truncated, never replayed.
        assert torn["recovered"] == torn["acked"]
        assert torn["truncated_bytes"] > 0
        # The two-phase cell proved recovery survives its own crash.
        mid_replay = by_kp["recovery.mid-replay"]
        assert mid_replay["recovery_crash_code"] == CRASH_EXIT_CODE

    def test_unknown_kill_point_rejected_by_cli(self, capsys):
        from repro.cli import main

        code = main(["crash-replay", "--kill-points", "wal.append.sideways"])
        assert code == 2
        captured = capsys.readouterr()
        assert "unknown kill-point" in (captured.out + captured.err).lower()

    def test_cli_runs_one_cell(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "matrix.json"
        code = main(
            [
                "crash-replay",
                "--kill-points",
                "wal.append.pre-fsync",
                "--seeds",
                "7",
                "--size",
                "30",
                "--ops",
                "8",
                "--output",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out + captured.err
        assert "pass" in captured.out.lower()
        assert out.exists()


class TestFsckCli:
    def test_fsck_clean_directory(self, tmp_path, capsys):
        import random

        from conftest import random_mixed_dataset
        from repro.cli import main
        from repro.durability import DurabilityConfig, DurabilityManager
        from repro.transform.dataset import TransformedDataset

        rng = random.Random(3)
        schema, records = random_mixed_dataset(rng, n=15)
        dataset = TransformedDataset(schema, records)
        with DurabilityManager(DurabilityConfig(tmp_path)) as manager:
            manager.attach(dataset)
            template = records[0]
            from repro.core.record import Record

            dataset.insert_record(
                Record("cli-extra", template.totals, template.partials)
            )
        code = main(["fsck", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0, captured.out + captured.err
        assert "clean" in captured.out.lower()

    def test_fsck_missing_directory_fails(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["fsck", str(tmp_path / "nope")])
        assert code != 0
