"""Tests for the benchmark harness and experiment registry."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    default_bench_size,
    get_experiment,
    run_experiment,
)
from repro.bench.harness import count_false_positives, run_progressive
from repro.bench.reporting import format_run_table, format_summary
from repro.exceptions import ReproError


class TestHarness:
    def test_run_progressive_collects_emissions(self, small_dataset, small_truth):
        run = run_progressive(small_dataset, "sdc+")
        assert run.skyline_size == len(small_truth)
        assert run.rids == small_truth
        assert len(run.emissions) == run.skyline_size
        elapsed = [e for e, _ in run.emissions]
        assert elapsed == sorted(elapsed)
        assert run.total_elapsed >= elapsed[-1]

    def test_milestones_shape(self, small_dataset):
        run = run_progressive(small_dataset, "sdc+")
        ms = run.milestones()
        assert len(ms) == 6  # first + 5 fractions
        assert ms[0].answers == 1
        assert ms[-1].fraction == 1.0
        assert ms[-1].answers == run.skyline_size
        checks = [m.dominance_checks for m in ms]
        assert checks == sorted(checks)

    def test_progressive_algorithms_have_earlier_first_answer(self, small_dataset):
        blocking = run_progressive(small_dataset, "bbs+")
        progressive = run_progressive(small_dataset, "sdc+")
        assert (
            progressive.first_answer().dominance_checks
            < blocking.first_answer().dominance_checks
        )

    def test_progressiveness_score_orders_algorithms(self, small_dataset):
        blocking = run_progressive(small_dataset, "bbs+")
        progressive = run_progressive(small_dataset, "sdc+")
        # Lower == answers arrive earlier in the run.
        assert progressive.progressiveness() < blocking.progressiveness()

    def test_options_require_name(self, small_dataset):
        from repro.algorithms.base import get_algorithm
        from repro.exceptions import AlgorithmError

        with pytest.raises(AlgorithmError):
            run_progressive(small_dataset, get_algorithm("sdc"), window_size=2)

    def test_count_false_positives(self, small_dataset, small_truth):
        sky, fp = count_false_positives(small_dataset)
        assert sky == len(small_truth)
        assert fp >= 0

    def test_count_false_positives_leaves_stats_untouched(self, small_dataset):
        before = small_dataset.stats.snapshot()
        count_false_positives(small_dataset)
        assert small_dataset.stats.snapshot() == before

    def test_empty_run(self):
        from repro.core.schema import NumericAttribute, Schema
        from repro.transform.dataset import TransformedDataset

        d = TransformedDataset(Schema([NumericAttribute("x")]), [])
        run = run_progressive(d, "sdc+")
        assert run.skyline_size == 0
        assert run.first_answer() is None
        assert run.milestones() == []


class TestExperiments:
    def test_registry_covers_every_figure(self):
        for exp_id in (
            "fig10a",
            "fig10b",
            "fig10c",
            "fig11a",
            "fig11b",
            "fig12a",
            "fig12b",
            "fig12c",
            "ablation-sdc",
            "sdc-minpc-maxpc",
        ):
            assert exp_id in EXPERIMENTS

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("FIG10A").id == "fig10a"

    def test_get_experiment_unknown(self):
        with pytest.raises(ReproError):
            get_experiment("fig99z")

    def test_default_bench_size_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "123")
        assert default_bench_size() == 123

    def test_size_factor(self):
        exp = get_experiment("fig12a")
        assert exp.config(100).data_size == 200

    def test_run_experiment_small(self):
        result = run_experiment("fig10a", data_size=250)
        assert set(result.runs) == {"BNL", "BNL+", "BBS+", "SDC", "SDC+"}
        result.verify_agreement()
        sizes = {run.skyline_size for run in result.runs.values()}
        assert len(sizes) == 1
        assert result.skyline_size == sizes.pop()
        assert result.num_strata >= 1

    def test_run_experiment_strategy_lineup(self):
        result = run_experiment("fig12c", data_size=200)
        assert set(result.runs) == {"SDC+", "SDC+-MaxPC", "SDC+-MinPC"}
        result.verify_agreement()

    def test_to_dict_machine_readable(self):
        import json

        result = run_experiment("fig10a", data_size=150)
        payload = result.to_dict()
        text = json.dumps(payload)  # must be JSON-serialisable
        assert payload["experiment"] == "fig10a"
        assert payload["skyline_size"] == result.skyline_size
        curve = payload["curves"]["SDC+"]
        assert curve["answers"] == result.runs["SDC+"].skyline_size
        assert curve["milestones"][-1]["fraction"] == 1.0
        assert "m_dominance_point" in curve["counters"]
        assert "BNL" in text

    def test_verify_agreement_raises_on_mismatch(self):
        result = run_experiment("fig10a", data_size=150, verify=False)
        result.runs["BNL"].points.pop()
        with pytest.raises(ReproError):
            result.verify_agreement()


class TestReporting:
    def test_format_run_table(self, small_dataset):
        runs = {"SDC+": run_progressive(small_dataset, "sdc+")}
        for metric in ("time", "checks"):
            table = format_run_table(runs, metric, title="demo")
            assert "SDC+" in table
            assert "demo" in table
            assert "100%" in table

    def test_format_summary(self):
        result = run_experiment("fig10a", data_size=150)
        text = format_summary(result)
        assert "fig10a" in text
        assert "skyline points" in text
        assert "false positives" in text

    def test_empty_run_row(self):
        from repro.core.schema import NumericAttribute, Schema
        from repro.transform.dataset import TransformedDataset

        d = TransformedDataset(Schema([NumericAttribute("x")]), [])
        table = format_run_table({"SDC+": run_progressive(d, "sdc+")})
        assert "(no answers)" in table
