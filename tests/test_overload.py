"""Overload-resilience layer: shedding, retries, breakers, watchdog.

Unit coverage for :mod:`repro.serving.overload` (queue policies, retry
policy, breaker state machine, degradation ladder) plus the server-level
integration invariants: a dead worker can never strand a
:class:`~repro.serving.server.QueryHandle`, the watchdog respawns
threads and walks the ladder back to ``healthy``, an open kernel breaker
degrades to the python kernel *once* instead of per-query, and writer
lock acquisition honours its timeout.  The trace-driven chaos replay
suite is ``tests/test_trace_replay.py``.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.exceptions import (
    LockTimeoutError,
    QueryShedError,
    ServingError,
)
from repro.resilience.chaos import (
    FaultInjector,
    StallInjector,
    inject_kernel_faults,
    inject_lock_delays,
    inject_worker_faults,
    inject_worker_stalls,
)
from repro.serving import QueryRequest, ReadWriteLock, SkylineServer
from repro.serving.overload import (
    BoundedQueryQueue,
    CircuitBreaker,
    DegradationLadder,
    OverloadConfig,
    RetryPolicy,
)


def _make_engine(kernel: str = "python", n: int = 120):
    import random

    from repro.core.record import Record
    from repro.core.schema import NumericAttribute, PosetAttribute, Schema
    from repro.engine import SkylineEngine
    from repro.posets.builder import diamond

    rng = random.Random(23)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


def _fake_handle(seq: int, deadline: float | None = None,
                 submitted_at: float = 0.0):
    return SimpleNamespace(
        seq=seq,
        submitted_at=submitted_at,
        request=SimpleNamespace(deadline=deadline),
    )


# ---------------------------------------------------------------------------
# BoundedQueryQueue
# ---------------------------------------------------------------------------
class TestBoundedQueue:
    def test_unbounded_is_plain_priority_queue(self):
        queue = BoundedQueryQueue(capacity=None)
        handles = [_fake_handle(i) for i in range(3)]
        assert queue.put(5, 0, handles[0]) is None
        assert queue.put(1, 1, handles[1]) is None
        assert queue.put(5, 2, handles[2]) is None
        assert queue.get() is handles[1]  # lowest priority value first
        assert queue.get() is handles[0]  # FIFO within a priority
        assert queue.get() is handles[2]

    def test_reject_newest_sheds_incoming(self):
        queue = BoundedQueryQueue(capacity=1, policy="reject-newest")
        assert queue.put(0, 0, _fake_handle(0)) is None
        assert queue.put(0, 1, _fake_handle(1)) == "queue-full"
        assert len(queue) == 1

    def test_priority_policy_evicts_worse_entry(self):
        shed = []
        queue = BoundedQueryQueue(
            capacity=1, policy="priority",
            on_shed=lambda h, reason: shed.append((h.seq, reason)),
        )
        loser = _fake_handle(0)
        assert queue.put(9, 0, loser) is None
        winner = _fake_handle(1)
        assert queue.put(1, 1, winner) is None  # outranks the queued entry
        assert shed == [(0, "lower-priority")]
        assert queue.get() is winner

    def test_priority_policy_sheds_incoming_when_outranked(self):
        shed = []
        queue = BoundedQueryQueue(
            capacity=1, policy="priority",
            on_shed=lambda h, reason: shed.append(h.seq),
        )
        assert queue.put(1, 0, _fake_handle(0)) is None
        assert queue.put(5, 1, _fake_handle(1)) == "lower-priority"
        assert shed == []  # the queued entry survived

    def test_deadline_policy_drops_doomed_entries_first(self):
        now = [100.0]
        shed = []
        queue = BoundedQueryQueue(
            capacity=2, policy="deadline", clock=lambda: now[0],
            on_shed=lambda h, reason: shed.append((h.seq, reason)),
        )
        doomed = _fake_handle(0, deadline=1.0, submitted_at=90.0)
        alive = _fake_handle(1, deadline=100.0, submitted_at=99.0)
        assert queue.put(0, 0, doomed) is None
        assert queue.put(0, 1, alive) is None
        incoming = _fake_handle(2)
        assert queue.put(0, 2, incoming) is None  # doomed entry made room
        assert shed == [(0, "doomed-deadline")]
        assert queue.get() is alive

    def test_deadline_policy_falls_back_to_priority(self):
        queue = BoundedQueryQueue(
            capacity=1, policy="deadline", clock=lambda: 0.0
        )
        assert queue.put(1, 0, _fake_handle(0)) is None  # nothing doomed
        assert queue.put(5, 1, _fake_handle(1)) == "lower-priority"

    def test_sentinel_bypasses_capacity(self):
        queue = BoundedQueryQueue(capacity=1, policy="reject-newest")
        assert queue.put(0, 0, _fake_handle(0)) is None
        queue.put_sentinel(1)
        assert queue.get() is not None
        assert queue.get() is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ServingError):
            BoundedQueryQueue(policy="oldest")
        with pytest.raises(ServingError):
            BoundedQueryQueue(capacity=0)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_attempt_limit(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.grant(0)
        assert policy.grant(1)
        assert not policy.grant(2)  # third retry would be a fourth attempt

    def test_idempotency_gate(self):
        policy = RetryPolicy(max_attempts=5)
        assert not policy.grant(0, idempotent=False)
        assert policy.granted == 0  # refused retries consume no budget

    def test_budget_is_shared_and_exhausts(self):
        policy = RetryPolicy(max_attempts=10, budget=2)
        assert policy.grant(0)
        assert policy.grant(0)
        assert not policy.grant(0)
        assert policy.granted == 2

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0
        )
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.3)  # capped
        assert policy.delay(5) == pytest.approx(0.3)

    def test_jittered_delays_are_seed_deterministic(self):
        a = RetryPolicy(seed=11, jitter=0.5)
        b = RetryPolicy(seed=11, jitter=0.5)
        seq_a = [a.delay(k) for k in range(6)]
        seq_b = [b.delay(k) for k in range(6)]
        assert seq_a == seq_b
        assert all(d > 0 for d in seq_a)
        different = RetryPolicy(seed=12, jitter=0.5)
        assert [different.delay(k) for k in range(6)] != seq_a

    def test_validation(self):
        with pytest.raises(ServingError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServingError):
            RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers_via_probe(self):
        now = [0.0]
        breaker = CircuitBreaker(
            "k", failure_threshold=2, recovery_time=5.0, clock=lambda: now[0]
        )
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # inside the recovery window
        now[0] = 6.0
        assert breaker.allow()  # half-open probe admitted
        assert breaker.state == "half_open"
        assert not breaker.allow()  # single probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert ("closed", "open") in breaker.transitions
        assert ("half_open", "closed") in breaker.transitions

    def test_failed_probe_reopens_and_restarts_clock(self):
        now = [0.0]
        breaker = CircuitBreaker(
            "k", failure_threshold=1, recovery_time=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        now[0] = 10.0  # recovery clock restarted at t=6
        assert not breaker.allow()
        now[0] = 12.0
        assert breaker.allow()

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker("k", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_transition_callback(self):
        seen = []
        breaker = CircuitBreaker(
            "pool", failure_threshold=1,
            on_transition=lambda name, old, new: seen.append((name, old, new)),
        )
        breaker.record_failure()
        assert seen == [("pool", "closed", "open")]


# ---------------------------------------------------------------------------
# DegradationLadder
# ---------------------------------------------------------------------------
class TestDegradationLadder:
    def test_escalate_and_single_rung_recovery(self):
        ladder = DegradationLadder()
        assert ladder.mode == "healthy"
        assert ladder.escalate("cache_only", "deaths")
        assert ladder.mode == "cache_only"
        assert not ladder.escalate("serial_only", "weaker signal ignored")
        assert ladder.at_least("serial_only")
        assert ladder.recover()
        assert ladder.mode == "serial_only"
        assert ladder.recover()
        assert ladder.mode == "healthy"
        assert not ladder.recover()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServingError):
            DegradationLadder().escalate("on-fire", "?")


# ---------------------------------------------------------------------------
# ReadWriteLock timeouts (satellite: typed LockTimeoutError)
# ---------------------------------------------------------------------------
class TestRwLockTimeout:
    def test_write_timeout_while_reader_holds(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        try:
            start = time.perf_counter()
            with pytest.raises(LockTimeoutError) as info:
                lock.acquire_write(timeout=0.05)
            assert time.perf_counter() - start < 2.0
            assert info.value.mode == "write"
            assert info.value.timeout == pytest.approx(0.05)
        finally:
            lock.release_read()
        # The failed writer left no residue: write now succeeds.
        lock.acquire_write(timeout=0.5)
        lock.release_write()

    def test_read_timeout_while_writer_holds(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        try:
            with pytest.raises(LockTimeoutError) as info:
                lock.acquire_read(timeout=0.05)
            assert info.value.mode == "read"
        finally:
            lock.release_write()
        with lock.read_lock(timeout=0.5):
            assert lock.readers == 1

    def test_timed_out_writer_releases_blocked_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()  # forces the writer to wait
        got_read = threading.Event()

        def late_reader():
            # Queues behind the waiting writer (writer preference)...
            lock.acquire_read()
            got_read.set()
            lock.release_read()

        def doomed_writer():
            try:
                lock.acquire_write(timeout=0.1)
                lock.release_write()
            except LockTimeoutError:
                pass

        writer = threading.Thread(target=doomed_writer)
        writer.start()
        time.sleep(0.02)  # let the writer start waiting
        reader = threading.Thread(target=late_reader)
        reader.start()
        writer.join(timeout=5.0)
        # ...and must be woken when the writer gives up.
        assert got_read.wait(timeout=5.0), "reader stuck behind dead writer"
        reader.join(timeout=5.0)
        lock.release_read()

    def test_server_update_lock_timeout(self):
        engine = _make_engine("python", n=40)
        server = SkylineServer(
            engine,
            workers=1,
            overload=OverloadConfig(update_lock_timeout=0.05, watchdog=False),
        )
        try:
            from repro.core.record import Record

            server._rwlock.acquire_read()  # a wedged reader
            try:
                with pytest.raises(LockTimeoutError):
                    server.insert(Record("late", (1, 1), ("a",)))
            finally:
                server._rwlock.release_read()
            assert all(p.record.rid != "late" for p in server.dataset.points)
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Server integration: worker death, shedding, breaker degrade-once
# ---------------------------------------------------------------------------
def _quick_watchdog(**overrides) -> OverloadConfig:
    base = dict(
        watchdog_interval=0.02,
        death_window=0.3,
        recovery_window=0.05,
        breaker_recovery=0.2,
    )
    base.update(overrides)
    return OverloadConfig(**base)


def _await(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestWorkerDeath:
    pytestmark = pytest.mark.filterwarnings(
        # The injected SystemExit kills the worker thread on purpose.
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )

    def test_handle_resolves_even_without_watchdog(self):
        # Regression: result(timeout=None) must never block forever when
        # the worker thread dies mid-query.
        engine = _make_engine("python", n=60)
        server = SkylineServer(
            engine, workers=1, overload=OverloadConfig(watchdog=False)
        )
        try:
            inject_worker_faults(
                server,
                FaultInjector(fail_after=1, max_faults=1, fault_type=SystemExit),
            )
            handle = server.submit(QueryRequest(algorithm="sdc+"))
            with pytest.raises(ServingError, match="worker"):
                handle.result()  # no timeout: must not hang
            assert handle.done()
        finally:
            server.close(wait=False)

    def test_watchdog_respawns_worker_and_recovers_health(self):
        engine = _make_engine("python", n=60)
        server = SkylineServer(engine, workers=2, overload=_quick_watchdog())
        try:
            inject_worker_faults(
                server,
                FaultInjector(fail_after=1, max_faults=1, fault_type=SystemExit),
            )
            handle = server.submit(QueryRequest(algorithm="sdc+"))
            with pytest.raises(ServingError):
                handle.result(timeout=5.0)
            assert _await(lambda: server.metrics.worker_restarts >= 1)
            assert _await(
                lambda: all(t.is_alive() for t in server._workers)
            ), "dead worker slot was not respawned"
            # Degraded on the death signal, then recovered.
            assert _await(lambda: server.mode == "healthy")
            assert server.metrics.worker_deaths == 1
            # The respawned pool still serves correctly.
            result = server.submit(QueryRequest(algorithm="sdc+")).result(
                timeout=10.0
            )
            assert result.complete
            snapshot = server.metrics.snapshot()
            assert snapshot["overload"]["worker_restarts"] == 1
            assert snapshot["overload"]["degradations"] >= 1
        finally:
            server.close()

    def test_stalled_worker_flagged_and_query_drains(self):
        engine = _make_engine("python", n=60)
        server = SkylineServer(
            engine, workers=1, overload=_quick_watchdog(stuck_after=0.05)
        )
        try:
            stall = inject_worker_stalls(
                server,
                StallInjector(fail_after=1, max_faults=1, stall_seconds=30.0),
            )
            handle = server.submit(QueryRequest(algorithm="sdc+"))
            assert _await(lambda: server.metrics.stuck_queries >= 1)
            assert server.mode in ("cache_only", "rejecting")
            stall.release.set()  # un-wedge
            assert handle.result(timeout=10.0).complete
            assert _await(lambda: server.mode == "healthy")
        finally:
            server.close()


class TestServerShedding:
    def test_full_queue_sheds_with_typed_error(self):
        engine = _make_engine("python", n=60)
        server = SkylineServer(
            engine,
            workers=1,
            max_pending=1000,  # admission must not be the limiter here
            overload=OverloadConfig(
                queue_capacity=1, shed_policy="reject-newest", watchdog=False
            ),
        )
        stall = inject_worker_stalls(
            server, StallInjector(fail_after=1, max_faults=1, stall_seconds=30.0)
        )
        try:
            wedged = server.submit(QueryRequest(algorithm="sdc+"))
            _await(lambda: len(server._queue) == 0, timeout=2.0)
            queued = server.submit(QueryRequest(algorithm="sdc+"))
            with pytest.raises(QueryShedError) as info:
                server.submit(QueryRequest(algorithm="sdc+"))
            assert info.value.reason == "queue-full"
            assert info.value.partial is not None
            assert info.value.partial.points == []
            assert server.metrics.shed.get("queue-full", 0) == 1
            stall.release.set()
            assert wedged.result(timeout=10.0).complete
            assert queued.result(timeout=10.0).complete
        finally:
            stall.release.set()
            server.close()

    def test_priority_shedding_resolves_evicted_handle(self):
        engine = _make_engine("python", n=60)
        server = SkylineServer(
            engine,
            workers=1,
            max_pending=1000,
            overload=OverloadConfig(
                queue_capacity=1, shed_policy="priority", watchdog=False
            ),
        )
        stall = inject_worker_stalls(
            server, StallInjector(fail_after=1, max_faults=1, stall_seconds=30.0)
        )
        try:
            wedged = server.submit(QueryRequest(algorithm="sdc+"))
            _await(lambda: len(server._queue) == 0, timeout=2.0)
            cheap = server.submit(QueryRequest(algorithm="sdc+", priority=9))
            urgent = server.submit(QueryRequest(algorithm="sdc+", priority=0))
            # The low-priority queued query was evicted and resolved.
            with pytest.raises(QueryShedError) as info:
                cheap.result(timeout=5.0)
            assert info.value.reason == "lower-priority"
            stall.release.set()
            assert wedged.result(timeout=10.0).complete
            assert urgent.result(timeout=10.0).complete
        finally:
            stall.release.set()
            server.close()


class TestKernelBreaker:
    pytestmark = pytest.mark.filterwarnings(
        # The three pre-open queries each legitimately fall back.
        "ignore::repro.exceptions.KernelFallbackWarning"
    )

    def test_breaker_degrades_once_not_per_query(self):
        pytest.importorskip("numpy")
        engine = _make_engine("numpy", n=80)
        server = SkylineServer(
            engine,
            workers=1,
            overload=OverloadConfig(
                breaker_failures=3, breaker_recovery=60.0, watchdog=False
            ),
        )
        try:
            # Every batch-kernel call fails: each query pays one fallback
            # until the breaker opens.
            injector = inject_kernel_faults(
                engine.dataset,
                FaultInjector(seed=3, rate=1.0, max_faults=10_000),
            )
            reference = sorted(
                p.record.rid
                for p in server.submit(QueryRequest(algorithm="sdc+")).result(
                    timeout=10.0
                ).points
            )
            for _ in range(2):
                server.submit(QueryRequest(algorithm="sdc+")).result(timeout=10.0)
            assert server.breakers["kernel"].state == "open"
            fired_at_open = injector.fired
            fallbacks_at_open = server.metrics.comparison_totals.kernel_fallbacks
            # Post-open queries go straight to the python kernel: same
            # answer, no new faults, no new per-query fallbacks.
            for _ in range(4):
                result = server.submit(QueryRequest(algorithm="sdc+")).result(
                    timeout=10.0
                )
                assert result.complete
                assert sorted(p.record.rid for p in result.points) == reference
            assert injector.fired == fired_at_open
            assert (
                server.metrics.comparison_totals.kernel_fallbacks
                == fallbacks_at_open
            )
            snapshot = server.metrics.snapshot()
            assert snapshot["overload"]["breakers"]["kernel"]["state"] == "open"
            assert snapshot["overload"]["breakers"]["kernel"]["opens"] == 1
        finally:
            server.close()


class TestRetryIntegration:
    def test_transient_kernel_fault_is_retried_to_success(self):
        engine = _make_engine("python", n=60)
        server = SkylineServer(
            engine,
            workers=1,
            overload=OverloadConfig(
                retry=RetryPolicy(
                    max_attempts=3, base_delay=0.01, max_delay=0.02, seed=5
                ),
                watchdog=False,
            ),
        )
        try:
            # Python kernel: a KernelError has no in-executor fallback,
            # so only the server's retry loop can save the query.
            inject_kernel_faults(
                engine.dataset, FaultInjector(seed=5, fail_after=5, max_faults=1)
            )
            result = server.submit(QueryRequest(algorithm="sdc+")).result(
                timeout=10.0
            )
            assert result.complete
            assert server.metrics.retries == 1
        finally:
            server.close()

    def test_non_idempotent_request_fails_fast(self):
        from repro.exceptions import KernelError

        engine = _make_engine("python", n=60)
        server = SkylineServer(
            engine,
            workers=1,
            overload=OverloadConfig(
                retry=RetryPolicy(max_attempts=3, base_delay=0.01),
                watchdog=False,
            ),
        )
        try:
            inject_kernel_faults(
                engine.dataset, FaultInjector(seed=5, fail_after=5, max_faults=1)
            )
            handle = server.submit(
                QueryRequest(algorithm="sdc+", idempotent=False)
            )
            with pytest.raises(KernelError):
                handle.result(timeout=10.0)
            assert server.metrics.retries == 0
        finally:
            server.close()


class TestLockDelayInjection:
    def test_update_stall_holds_writer_lock(self):
        engine = _make_engine("python", n=40)
        server = SkylineServer(
            engine, workers=1, overload=OverloadConfig(watchdog=False)
        )
        try:
            from repro.core.record import Record

            stall = inject_lock_delays(
                server,
                StallInjector(fail_after=1, max_faults=1, stall_seconds=0.2),
            )
            start = time.perf_counter()
            server.insert(Record("slow", (2, 2), ("a",)))
            elapsed = time.perf_counter() - start
            assert stall.fired == 1
            assert stall.sites == ["server.update.lock_hold"]
            assert elapsed >= 0.15  # the stall really held the lock
            assert any(p.record.rid == "slow" for p in server.dataset.points)
        finally:
            server.close()


def test_degradation_modes_gate_submission():
    engine = _make_engine("python", n=40)
    server = SkylineServer(
        engine, workers=1, overload=OverloadConfig(watchdog=False)
    )
    try:
        from repro.exceptions import AdmissionRejectedError

        server._ladder.escalate("rejecting", "test")
        with pytest.raises(AdmissionRejectedError) as info:
            server.submit(QueryRequest(algorithm="sdc+"))
        assert info.value.reason == "rejecting"
        assert server.metrics.rejected.get("rejecting", 0) == 1
    finally:
        server.close()


def test_cache_only_mode_serves_hits_rejects_misses():
    from repro.exceptions import AdmissionRejectedError

    engine = _make_engine("python", n=60)
    server = SkylineServer(
        engine, workers=1, cache=True, overload=OverloadConfig(watchdog=False)
    )
    try:
        warm = server.submit(QueryRequest(algorithm="sdc+")).result(timeout=10.0)
        assert warm.complete
        server._ladder.escalate("cache_only", "test")
        hit = server.submit(QueryRequest(algorithm="sdc+")).result(timeout=10.0)
        assert hit.cached
        assert sorted(p.record.rid for p in hit.points) == sorted(
            p.record.rid for p in warm.points
        )
        with pytest.raises(AdmissionRejectedError) as info:
            server.submit(QueryRequest(algorithm="sdc+", skyband_k=2))
        assert info.value.reason == "cache_only"
    finally:
        server.close()
