"""Tests for classic BBS on totally-ordered schemas (Fig. 1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline
from repro.algorithms.base import get_algorithm
from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.exceptions import AlgorithmError
from repro.posets.builder import diamond
from repro.transform.dataset import TransformedDataset


def numeric_dataset(n: int, dims: int, seed: int, bulk: bool = True) -> TransformedDataset:
    rng = random.Random(seed)
    schema = Schema([NumericAttribute(f"x{k}") for k in range(dims)])
    records = [
        Record(i, tuple(rng.randint(0, 50) for _ in range(dims))) for i in range(n)
    ]
    return TransformedDataset(schema, records, bulk_load=bulk, max_entries=8)


class TestBBS:
    def test_matches_brute_force(self):
        d = numeric_dataset(200, 2, seed=1)
        got = sorted(p.record.rid for p in get_algorithm("bbs").run(d))
        assert got == brute_force_skyline(d.schema, d.records)

    def test_three_dims(self):
        d = numeric_dataset(150, 3, seed=2)
        got = sorted(p.record.rid for p in get_algorithm("bbs").run(d))
        assert got == brute_force_skyline(d.schema, d.records)

    def test_rejects_poset_schema(self):
        schema = Schema([NumericAttribute("x"), PosetAttribute.set_valued("p", diamond())])
        d = TransformedDataset(schema, [Record(0, (1,), ("a",))])
        with pytest.raises(AlgorithmError):
            list(get_algorithm("bbs").run(d))

    def test_progressive_emission_in_key_order(self):
        """BBS emits skyline points in ascending mindist order -- the
        property that makes every emission definite."""
        d = numeric_dataset(300, 2, seed=3)
        keys = [p.key for p in get_algorithm("bbs").run(d)]
        assert keys == sorted(keys)

    def test_every_emission_is_definite(self):
        """No emitted point is dominated by a later emitted point."""
        d = numeric_dataset(200, 2, seed=4)
        emitted = list(get_algorithm("bbs").run(d))
        k = d.kernel
        for i, p in enumerate(emitted):
            for q in emitted[i + 1 :]:
                assert not k.m_dominates(q, p)

    def test_io_frugality(self):
        """BBS should touch far fewer nodes than the whole tree on a
        correlated-ish workload (it is I/O optimal in the paper)."""
        d = numeric_dataset(2000, 2, seed=5)
        d.index  # build outside measurement
        before = d.stats.node_accesses
        list(get_algorithm("bbs").run(d))
        accessed = d.stats.node_accesses - before

        def count_nodes(node):
            if node.leaf:
                return 1
            return 1 + sum(count_nodes(c) for c in node.entries)

        assert accessed < count_nodes(d.index.root)

    def test_empty(self):
        schema = Schema([NumericAttribute("x")])
        d = TransformedDataset(schema, [])
        assert list(get_algorithm("bbs").run(d)) == []

    def test_max_direction(self):
        schema = Schema([NumericAttribute("low", "min"), NumericAttribute("high", "max")])
        records = [Record(0, (1, 9)), Record(1, (0, 10)), Record(2, (5, 5))]
        d = TransformedDataset(schema, records)
        got = sorted(p.record.rid for p in get_algorithm("bbs").run(d))
        assert got == [1]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), dims=st.integers(1, 4), bulk=st.booleans())
def test_bbs_property(seed, dims, bulk):
    d = numeric_dataset(80, dims, seed=seed, bulk=bulk)
    got = sorted(p.record.rid for p in get_algorithm("bbs").run(d))
    assert got == brute_force_skyline(d.schema, d.records)
