"""Tests for the winnow operator (arbitrary-preference best matches)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline, random_mixed_dataset
from repro.core.record import Record
from repro.core.schema import NumericAttribute, Schema
from repro.exceptions import AlgorithmError
from repro.queries.winnow import (
    check_preference,
    lexicographic_preference,
    pareto_preference,
    winnow,
)


def numeric_schema(dims=2):
    return Schema([NumericAttribute(f"x{k}") for k in range(dims)])


class TestWinnowCore:
    def test_skyline_as_winnow(self):
        rng = random.Random(1)
        schema, records = random_mixed_dataset(rng, n=50)
        got = sorted(r.rid for r in winnow(records, pareto_preference(schema)))
        assert got == brute_force_skyline(schema, records)

    def test_empty(self):
        schema = numeric_schema()
        assert winnow([], pareto_preference(schema)) == []

    def test_input_order_preserved(self):
        schema = numeric_schema()
        records = [Record(i, (v, 10 - v)) for i, v in enumerate([5, 1, 9, 3])]
        answers = winnow(records, pareto_preference(schema))
        assert [r.rid for r in answers] == [0, 1, 2, 3]  # all incomparable

    def test_total_preference_leaves_one_equivalence_class(self):
        schema = numeric_schema(1)
        records = [Record(i, (v,)) for i, v in enumerate([4, 2, 7, 2])]
        prefers = lexicographic_preference(schema, ["x0"])
        answers = winnow(records, prefers)
        assert sorted(r.rid for r in answers) == [1, 3]  # the tied minima

    def test_custom_business_preference(self):
        schema = numeric_schema()
        records = [Record(i, (i, 0)) for i in range(6)]

        def prefers(a, b):  # strictly smaller even beats strictly larger even
            ax, bx = a.totals[0], b.totals[0]
            return ax % 2 == 0 and bx % 2 == 0 and ax < bx

        answers = winnow(records, prefers)
        # Odd records are incomparable islands; even records reduce to 0.
        assert sorted(r.rid for r in answers) == [0, 1, 3, 5]


class TestLexicographic:
    def test_tie_broken_by_second_attribute(self):
        schema = numeric_schema()
        records = [Record(0, (1, 9)), Record(1, (1, 2)), Record(2, (2, 0))]
        prefers = lexicographic_preference(schema, ["x0", "x1"])
        answers = winnow(records, prefers)
        assert [r.rid for r in answers] == [1]

    def test_max_direction_respected(self):
        schema = Schema([NumericAttribute("score", "max")])
        records = [Record(0, (10,)), Record(1, (50,)), Record(2, (30,))]
        prefers = lexicographic_preference(schema, ["score"])
        assert [r.rid for r in winnow(records, prefers)] == [1]

    def test_rejects_poset_attribute(self):
        rng = random.Random(2)
        schema, _ = random_mixed_dataset(rng, n=1)
        with pytest.raises(AlgorithmError):
            lexicographic_preference(schema, ["p0"])


class TestValidation:
    def test_reflexive_preference_caught(self):
        records = [Record(0, (1,))]
        with pytest.raises(AlgorithmError):
            check_preference(records, lambda a, b: True)

    def test_symmetric_preference_caught(self):
        records = [Record(0, (1,)), Record(1, (2,))]

        def prefers(a, b):
            return a is not b  # symmetric: both directions true

        with pytest.raises(AlgorithmError):
            check_preference(records, prefers)

    def test_intransitive_preference_caught(self):
        # rock-paper-scissors on rid mod 3
        records = [Record(i, (i,)) for i in range(3)]

        def prefers(a, b):
            return (a.rid - b.rid) % 3 == 1

        with pytest.raises(AlgorithmError):
            check_preference(records, prefers, sample_size=9)

    def test_valid_preference_passes(self):
        schema = numeric_schema()
        rng = random.Random(3)
        records = [Record(i, (rng.randint(0, 9), rng.randint(0, 9))) for i in range(20)]
        check_preference(records, pareto_preference(schema))
        winnow(records, pareto_preference(schema), validate=True)

    def test_empty_records_skip_validation(self):
        check_preference([], lambda a, b: True)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_winnow_matches_quadratic_definition(seed):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=35)
    prefers = pareto_preference(schema)
    expected = sorted(
        r.rid
        for r in records
        if not any(prefers(o, r) for o in records if o is not r)
    )
    assert sorted(r.rid for r in winnow(records, prefers)) == expected
