"""Tests for milestone math and report formatting."""

from __future__ import annotations

import pytest

from repro.bench.harness import FRACTIONS, AlgorithmRun, Milestone
from repro.bench.reporting import (
    emission_timeline,
    format_milestone_header,
    format_run_table,
    format_timelines,
)


def make_run(n_answers: int, total: float = 1.0, spread: str = "uniform"):
    """Synthetic run: n answers, controllable emission pattern."""
    emissions = []
    for i in range(n_answers):
        if spread == "uniform":
            t = (i + 1) / n_answers * total
        elif spread == "early":
            t = total * 0.01 * (i + 1) / n_answers
        else:  # late
            t = total * (0.99 + 0.01 * (i + 1) / n_answers)
        emissions.append((t, {"m_dominance_point": (i + 1) * 10, "native_set": i}))
    return AlgorithmRun("test", [object()] * n_answers, emissions, total, {})


class TestMilestones:
    def test_fraction_indices(self):
        run = make_run(10)
        ms = run.milestones()
        assert [m.fraction for m in ms] == [0.0, *FRACTIONS]
        assert ms[0].answers == 1
        assert [m.answers for m in ms[1:]] == [2, 4, 6, 8, 10]

    def test_rounding_with_awkward_counts(self):
        for n in (1, 2, 3, 7, 13):
            run = make_run(n)
            ms = run.milestones()
            answers = [m.answers for m in ms]
            assert answers[0] == 1
            assert answers[-1] == n
            assert all(1 <= a <= n for a in answers)
            assert answers[1:] == sorted(answers[1:])

    def test_milestone_carries_counters(self):
        run = make_run(5)
        last = run.milestones()[-1]
        assert isinstance(last, Milestone)
        assert last.dominance_checks == 50 + 4  # m_dominance + native_set
        assert last.native_set == 4

    def test_first_answer(self):
        run = make_run(5)
        first = run.first_answer()
        assert first.answers == 1
        assert first.fraction == 0.0

    def test_empty_run(self):
        run = AlgorithmRun("test", [], [], 0.0, {})
        assert run.first_answer() is None
        assert run.milestones() == []
        assert run.progressiveness() == 0.0


class TestProgressivenessScore:
    def test_uniform_is_half(self):
        run = make_run(1000)
        assert run.progressiveness() == pytest.approx(0.5, abs=0.01)

    def test_early_lower_than_late(self):
        early = make_run(100, spread="early")
        late = make_run(100, spread="late")
        assert early.progressiveness() < 0.05
        assert late.progressiveness() > 0.95


class TestTimeline:
    def test_blocking_run_lights_last_column(self):
        run = make_run(50, spread="late")
        line = emission_timeline(run, buckets=20)
        assert len(line) == 20
        assert line[-1] == "#"
        assert set(line[:-2]) <= {" "}

    def test_early_run_lights_first_column(self):
        run = make_run(50, spread="early")
        line = emission_timeline(run, buckets=20)
        assert line[0] == "#"

    def test_empty(self):
        run = AlgorithmRun("test", [], [], 0.0, {})
        assert emission_timeline(run) == "(no answers)"

    def test_format_timelines(self):
        runs = {"A": make_run(10), "B": make_run(10, spread="late")}
        text = format_timelines(runs, buckets=10)
        assert "A" in text and "B" in text
        assert text.count("|") == 4


class TestAsciiScatter:
    def test_empty(self):
        from repro.bench.reporting import ascii_scatter

        assert ascii_scatter([]) == "(no points)"

    def test_dimensions(self):
        from repro.bench.reporting import ascii_scatter

        art = ascii_scatter([(0, 0), (1, 1)], width=10, height=4)
        lines = art.splitlines()
        assert len(lines) == 6  # 4 rows + 2 borders
        assert all(len(line) == 12 for line in lines)

    def test_highlight_marker(self):
        from repro.bench.reporting import ascii_scatter

        art = ascii_scatter([(0, 0), (1, 1)], highlight={0}, width=10, height=4)
        assert "*" in art and "." in art

    def test_highlight_wins_cell_conflicts(self):
        from repro.bench.reporting import ascii_scatter

        art = ascii_scatter([(0, 0), (0, 0)], highlight={1}, width=5, height=3)
        assert "*" in art and "." not in art

    def test_degenerate_single_point(self):
        from repro.bench.reporting import ascii_scatter

        art = ascii_scatter([(5, 5)], width=8, height=3)
        assert art.count(".") == 1

    def test_corner_placement(self):
        from repro.bench.reporting import ascii_scatter

        art = ascii_scatter([(0, 0), (10, 10)], width=10, height=4)
        rows = art.splitlines()[1:-1]
        assert rows[0][1] == "."  # min/min at top-left
        assert rows[-1][-2] == "."  # max/max at bottom-right


class TestTables:
    def test_header_and_rows(self):
        runs = {"ALGO": make_run(10)}
        table = format_run_table(runs, "checks", title="demo")
        assert "demo" in table
        assert "ALGO" in table
        assert format_milestone_header() in table

    def test_time_metric_formats_ms(self):
        table = format_run_table({"X": make_run(4, total=2.0)}, "time")
        assert "m" in table  # millisecond suffix
