"""Tests for the public API (:mod:`repro.engine`, package exports)."""

from __future__ import annotations

import pytest

import repro
from repro import (
    NumericAttribute,
    PosetAttribute,
    Record,
    Schema,
    SkylineEngine,
    skyline,
)
from repro.algorithms.base import get_algorithm
from repro.exceptions import AlgorithmError
from repro.posets.builder import diamond, from_set_family


def hotel_setup():
    amenities = from_set_family(
        {
            "full": {"gym", "pool", "spa"},
            "fit": {"gym"},
            "swim": {"pool"},
            "basic": set(),
        }
    )
    schema = Schema(
        [
            NumericAttribute("price", "min"),
            PosetAttribute.set_valued("amenities", amenities),
        ]
    )
    hotels = [
        Record("Grand", (320,), ("full",)),
        Record("Budget", (80,), ("basic",)),
        Record("Fit", (150,), ("fit",)),
        Record("FitWorse", (200,), ("fit",)),
        Record("Swim", (150,), ("swim",)),
    ]
    return schema, hotels


class TestSkylineFunction:
    def test_hotel_example(self):
        schema, hotels = hotel_setup()
        answers = {r.rid for r in skyline(hotels, schema)}
        assert answers == {"Grand", "Budget", "Fit", "Swim"}

    def test_algorithm_choice(self):
        schema, hotels = hotel_setup()
        for name in ("bnl", "bbs+", "sdc", "sdc+"):
            answers = {r.rid for r in skyline(hotels, schema, algorithm=name)}
            assert answers == {"Grand", "Budget", "Fit", "Swim"}

    def test_strategy_choice(self):
        schema, hotels = hotel_setup()
        answers = {r.rid for r in skyline(hotels, schema, strategy="minpc")}
        assert answers == {"Grand", "Budget", "Fit", "Swim"}

    def test_docstring_example(self):
        schema = Schema(
            [
                NumericAttribute("price", "min"),
                PosetAttribute.set_valued("tier", diamond()),
            ]
        )
        records = [Record(0, (100,), ("a",)), Record(1, (100,), ("d",))]
        assert [r.rid for r in skyline(records, schema)] == [0]


class TestEngine:
    def test_reuse_across_algorithms(self):
        schema, hotels = hotel_setup()
        engine = SkylineEngine(schema, hotels)
        a = {r.rid for r in engine.skyline("bbs+")}
        b = {r.rid for r in engine.skyline("sdc+")}
        assert a == b

    def test_run_is_lazy(self):
        schema, hotels = hotel_setup()
        engine = SkylineEngine(schema, hotels)
        it = engine.run("sdc+")
        assert next(it).rid is not None

    def test_run_points_exposes_metadata(self):
        schema, hotels = hotel_setup()
        engine = SkylineEngine(schema, hotels)
        point = next(engine.run_points("sdc+"))
        assert point.category is not None
        assert isinstance(point.vector, tuple)

    def test_stats_accumulate(self):
        schema, hotels = hotel_setup()
        engine = SkylineEngine(schema, hotels)
        engine.skyline("bnl")
        assert engine.stats.total_dominance_checks > 0

    def test_algorithm_instance_passthrough(self):
        schema, hotels = hotel_setup()
        engine = SkylineEngine(schema, hotels)
        algo = get_algorithm("bnl", window_size=2)
        assert engine.algorithm(algo) is algo
        assert {r.rid for r in engine.skyline(algo)} == {
            "Grand",
            "Budget",
            "Fit",
            "Swim",
        }

    def test_unknown_algorithm(self):
        schema, hotels = hotel_setup()
        engine = SkylineEngine(schema, hotels)
        with pytest.raises(AlgorithmError):
            engine.skyline("nope")

    def test_payload_carried_through(self):
        schema, hotels = hotel_setup()
        hotels[0] = Record("Grand", (320,), ("full",), payload={"stars": 5})
        engine = SkylineEngine(schema, hotels)
        grand = next(r for r in engine.skyline("sdc+") if r.rid == "Grand")
        assert grand.payload == {"stars": 5}

    def test_empty_records(self):
        schema, _ = hotel_setup()
        assert skyline([], schema) == []


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_available_algorithms_export(self):
        assert "sdc+" in repro.available_algorithms()
