"""Tests for the durability layer: WAL, snapshots, recovery, fsck.

The crash-process chaos matrix lives in ``test_crash_replay.py``; this
file covers the single-process contracts: frame encoding, torn-tail
repair, snapshot atomicity and fallback, manager attach/checkpoint
semantics, commit rollback on WAL failure, the server's read-only
degradation, the hardened listener registry and atomic bench artifacts.
"""

from __future__ import annotations

import json
import random

import pytest

from conftest import random_mixed_dataset
from repro.core.record import Record
from repro.durability import (
    DurabilityConfig,
    DurabilityManager,
    WalRecord,
    WriteAheadLog,
    fsck,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    recover,
    rebuild_dataset,
    write_snapshot,
)
from repro.durability.recovery import SNAPSHOT_SUBDIR, WAL_SUBDIR
from repro.durability.snapshot import dataset_body, snapshot_lsn
from repro.durability.wal import _HEADER, MAX_PAYLOAD_BYTES
from repro.exceptions import DurabilityError
from repro.transform.dataset import TransformedDataset


def _dataset(seed: int = 11, n: int = 25, **kwargs) -> TransformedDataset:
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=n)
    return TransformedDataset(schema, records, **kwargs)


def _fresh_record(dataset: TransformedDataset, rid) -> Record:
    template = dataset.records[0]
    return Record(rid, template.totals, template.partials)


# ---------------------------------------------------------------------------
# WAL frames and segments
# ---------------------------------------------------------------------------
class TestWal:
    def test_append_read_roundtrip(self, tmp_path):
        dataset = _dataset(n=5)
        with WriteAheadLog(tmp_path, sync="never") as wal:
            wal.append(WalRecord(1, "insert", record=dataset.records[0]))
            wal.append(WalRecord(2, "delete", rid=dataset.records[1].rid))
            records = wal.records()
        assert [r.lsn for r in records] == [1, 2]
        assert records[0].op == "insert"
        assert records[0].record.rid == dataset.records[0].rid
        assert records[0].record.totals == dataset.records[0].totals
        assert records[1].op == "delete"
        assert records[1].rid == dataset.records[1].rid
        assert wal.appended == 2
        assert wal.bytes_written > 0

    def test_unknown_op_rejected(self):
        with pytest.raises(DurabilityError, match="unknown WAL op"):
            WalRecord(1, "truncate").encode()

    def test_records_after_lsn_filter(self, tmp_path):
        dataset = _dataset(n=3)
        with WriteAheadLog(tmp_path, sync="never") as wal:
            for lsn in (1, 2, 3):
                wal.append(WalRecord(lsn, "insert", record=dataset.records[0]))
            assert [r.lsn for r in wal.records(after_lsn=1)] == [2, 3]
            assert wal.last_lsn() == 3

    def test_torn_payload_truncated(self, tmp_path):
        dataset = _dataset(n=3)
        with WriteAheadLog(tmp_path, sync="never") as wal:
            wal.append(WalRecord(1, "insert", record=dataset.records[0]))
            frame = WalRecord(2, "insert", record=dataset.records[1]).encode()
        segment = WriteAheadLog(tmp_path).segments()[0]
        with open(segment, "ab") as fh:
            fh.write(frame[:-4])  # torn mid-payload
        wal = WriteAheadLog(tmp_path)
        report = wal.repair()
        assert report["truncated_bytes"] == len(frame) - 4
        assert report["last_lsn"] == 1
        assert [r.lsn for r in wal.records()] == [1]
        # Idempotent: a second repair finds nothing.
        assert wal.repair()["truncated_bytes"] == 0

    def test_crc_mismatch_truncated(self, tmp_path):
        dataset = _dataset(n=3)
        with WriteAheadLog(tmp_path, sync="never") as wal:
            wal.append(WalRecord(1, "insert", record=dataset.records[0]))
            offset = wal.bytes_written
            wal.append(WalRecord(2, "insert", record=dataset.records[1]))
        segment = WriteAheadLog(tmp_path).segments()[0]
        data = bytearray(segment.read_bytes())
        data[offset + _HEADER.size + 2] ^= 0xFF  # flip a payload byte
        segment.write_bytes(bytes(data))
        wal = WriteAheadLog(tmp_path)
        assert wal.repair()["truncated_bytes"] > 0
        assert [r.lsn for r in wal.records()] == [1]

    def test_implausible_length_is_corruption(self, tmp_path):
        segment = tmp_path / "wal-0000000000000001.log"
        segment.write_bytes(_HEADER.pack(MAX_PAYLOAD_BYTES + 1, 0))
        wal = WriteAheadLog(tmp_path)
        report = wal.repair()
        assert report["truncated_bytes"] == _HEADER.size
        assert wal.records() == []

    def test_corruption_orphans_later_segments(self, tmp_path):
        dataset = _dataset(n=3)
        wal = WriteAheadLog(tmp_path, sync="never")
        wal.append(WalRecord(1, "insert", record=dataset.records[0]))
        wal.rotate(2)
        wal.append(WalRecord(2, "insert", record=dataset.records[1]))
        wal.close()
        first = WriteAheadLog(tmp_path).segments()[0]
        with open(first, "ab") as fh:
            fh.write(b"\x00\x01")  # torn header mid-log
        wal = WriteAheadLog(tmp_path)
        report = wal.repair()
        assert report["orphaned_segments"] == ["wal-0000000000000002.log"]
        # Nothing past the corruption is ever replayed.
        assert [r.lsn for r in wal.records()] == [1]
        assert len(list(tmp_path.glob("*.orphan"))) == 1

    def test_unrepaired_corruption_refuses_scan(self, tmp_path):
        segment = tmp_path / "wal-0000000000000001.log"
        segment.write_bytes(b"\x00\x00")
        with pytest.raises(DurabilityError, match="run repair"):
            WriteAheadLog(tmp_path).records()

    def test_rotate_and_retire(self, tmp_path):
        dataset = _dataset(n=4)
        wal = WriteAheadLog(tmp_path, sync="never")
        wal.append(WalRecord(1, "insert", record=dataset.records[0]))
        wal.rotate(2)
        wal.append(WalRecord(2, "insert", record=dataset.records[1]))
        wal.rotate(3)
        retired = wal.retire(2)
        assert [p.name for p in retired] == [
            "wal-0000000000000001.log",
            "wal-0000000000000002.log",
        ]
        # The active segment survives even when covered.
        assert len(wal.segments()) == 1
        wal.close()

    def test_bad_sync_policy(self, tmp_path):
        with pytest.raises(DurabilityError, match="sync policy"):
            WriteAheadLog(tmp_path, sync="sometimes")


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------
class TestSnapshot:
    def test_write_load_rebuild_bit_identical(self, tmp_path):
        dataset = _dataset(seed=3, n=20)
        path = write_snapshot(tmp_path, dataset, dataset.update_version)
        body = load_snapshot(path)
        rebuilt = rebuild_dataset(body)
        assert [r.rid for r in rebuilt.records] == [
            r.rid for r in dataset.records
        ]
        # Transformed coordinates must be bit-identical (the persisted
        # spanning forests pin the encoding).
        assert [p.vector for p in rebuilt.points] == [
            p.vector for p in dataset.points
        ]
        assert [p.pix for p in rebuilt.points] == [
            p.pix for p in dataset.points
        ]
        assert snapshot_lsn(path) == dataset.update_version

    def test_no_temp_files_left(self, tmp_path):
        dataset = _dataset(n=5)
        write_snapshot(tmp_path, dataset, 0)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_checksum_detected(self, tmp_path):
        dataset = _dataset(n=5)
        path = write_snapshot(tmp_path, dataset, 0)
        doc = json.loads(path.read_text())
        doc["crc32"] ^= 1
        path.write_text(json.dumps(doc))
        with pytest.raises(DurabilityError, match="checksum"):
            load_snapshot(path)

    def test_prune_keeps_newest(self, tmp_path):
        dataset = _dataset(n=5)
        for lsn in (1, 2, 3):
            write_snapshot(tmp_path, dataset, lsn)
        (tmp_path / "snapshot-stray.json.tmp").write_text("junk")
        prune_snapshots(tmp_path, keep=2)
        assert [snapshot_lsn(p) for p in list_snapshots(tmp_path)] == [2, 3]
        assert list(tmp_path.glob("*.tmp")) == []

    def test_body_round_trips_config(self, tmp_path):
        dataset = _dataset(n=8, kernel="numpy", max_entries=4)
        body = dataset_body(dataset, 0)
        rebuilt = rebuild_dataset(body)
        assert rebuilt.kernel_name == "numpy"
        assert rebuilt.max_entries == 4
        assert rebuilt.native_mode == dataset.native_mode


# ---------------------------------------------------------------------------
# Manager: attach, checkpoint, rollback on WAL failure
# ---------------------------------------------------------------------------
class TestManager:
    def test_attach_writes_genesis_snapshot(self, tmp_path):
        dataset = _dataset(n=10)
        with DurabilityManager(DurabilityConfig(tmp_path)) as manager:
            manager.attach(dataset)
            assert len(list_snapshots(tmp_path / SNAPSHOT_SUBDIR)) == 1
            assert manager.checkpoints == 1

    def test_double_attach_rejected(self, tmp_path):
        dataset = _dataset(n=5)
        manager = DurabilityManager(DurabilityConfig(tmp_path))
        manager.attach(dataset)
        try:
            with pytest.raises(DurabilityError, match="already attached"):
                manager.attach(dataset)
            other = DurabilityManager(DurabilityConfig(tmp_path / "b"))
            with pytest.raises(DurabilityError, match="commit hook"):
                other.attach(dataset)
        finally:
            manager.detach()

    def test_unreplayed_tail_rejected(self, tmp_path):
        dataset = _dataset(n=10)
        manager = DurabilityManager(DurabilityConfig(tmp_path))
        manager.attach(dataset)
        dataset.insert_record(_fresh_record(dataset, "extra"))
        manager.detach()
        # A fresh dataset (version 0) against a WAL tail at LSN 1 would
        # fork history; attach must demand recover() instead.
        fresh = _dataset(n=10)
        with pytest.raises(DurabilityError, match="recover"):
            DurabilityManager(DurabilityConfig(tmp_path)).attach(fresh)

    def test_auto_checkpoint_interval(self, tmp_path):
        dataset = _dataset(n=10)
        config = DurabilityConfig(
            tmp_path, checkpoint_interval=2, keep_snapshots=2
        )
        with DurabilityManager(config) as manager:
            manager.attach(dataset)
            for i in range(4):
                dataset.insert_record(_fresh_record(dataset, f"auto-{i}"))
            assert manager.checkpoints == 3  # genesis + 2 automatic
            assert manager.commits_since_checkpoint == 0

    def test_wal_failure_rolls_back_commit(self, tmp_path):
        dataset = _dataset(n=10)
        manager = DurabilityManager(DurabilityConfig(tmp_path))
        manager.attach(dataset)
        try:
            version = dataset.update_version
            size = len(dataset.points)
            skyline_before = {
                p.record.rid for p in _skyline_points(dataset)
            }

            def broken_append(entry):
                raise DurabilityError("disk on fire")

            manager.wal.append = broken_append
            with pytest.raises(DurabilityError, match="disk on fire"):
                dataset.insert_record(_fresh_record(dataset, "doomed"))
            # Fully rolled back: version unbumped, point gone, strata
            # and skyline exactly as before the failed commit.
            assert dataset.update_version == version
            assert len(dataset.points) == size
            assert all(p.record.rid != "doomed" for p in dataset.points)
            assert {
                p.record.rid for p in _skyline_points(dataset)
            } == skyline_before
        finally:
            manager.detach()

    def test_wal_failure_rolls_back_delete(self, tmp_path):
        dataset = _dataset(n=10)
        manager = DurabilityManager(DurabilityConfig(tmp_path))
        manager.attach(dataset)
        try:
            victim = dataset.records[0].rid
            version = dataset.update_version

            def broken_append(entry):
                raise DurabilityError("no space")

            manager.wal.append = broken_append
            with pytest.raises(DurabilityError):
                dataset.delete_record(victim)
            assert dataset.update_version == version
            assert any(p.record.rid == victim for p in dataset.points)
            assert fsck(dataset)["clean"]
        finally:
            manager.detach()

    def test_checkpoint_retires_covered_segments(self, tmp_path):
        dataset = _dataset(n=10)
        with DurabilityManager(DurabilityConfig(tmp_path)) as manager:
            manager.attach(dataset)
            for i in range(3):
                dataset.insert_record(_fresh_record(dataset, f"cp-{i}"))
            manager.checkpoint()  # snapshots {0, 3}: nothing retirable yet
            wal_dir = tmp_path / WAL_SUBDIR
            # Segments covered only by the *newest* snapshot are kept:
            # they back the fallback snapshot's forward replay.
            assert len(WriteAheadLog(wal_dir).segments()) == 2
            for i in range(2):
                dataset.insert_record(_fresh_record(dataset, f"cp2-{i}"))
            manager.checkpoint()  # snapshots {3, 5}: genesis pruned
            live = WriteAheadLog(wal_dir).segments()
            # The pre-LSN-3 segment is now wholly covered by the oldest
            # retained snapshot and gone; LSN 4-5 stay replayable.
            assert [WriteAheadLog.segment_start_lsn(p) for p in live] == [4, 6]


def _skyline_points(dataset):
    from repro.algorithms.base import get_algorithm

    return list(get_algorithm("sdc+").run(dataset))


# ---------------------------------------------------------------------------
# Recovery and fsck
# ---------------------------------------------------------------------------
class TestRecovery:
    def _churn(self, dataset, steps: int = 6):
        rng = random.Random(99)
        live = [r.rid for r in dataset.records]
        for step in range(steps):
            if live and rng.random() < 0.4:
                dataset.delete_record(live.pop(rng.randrange(len(live))))
            else:
                record = _fresh_record(dataset, f"churn-{step}")
                dataset.insert_record(record)
                live.append(record.rid)

    def test_round_trip_equals_original(self, tmp_path):
        dataset = _dataset(seed=5, n=20)
        manager = DurabilityManager(
            DurabilityConfig(tmp_path, checkpoint_interval=3)
        )
        manager.attach(dataset)
        self._churn(dataset)
        manager.detach()
        report = recover(tmp_path)
        assert report.last_lsn == dataset.update_version
        assert report.dataset.update_version == dataset.update_version
        assert [p.record.rid for p in _skyline_points(report.dataset)] == [
            p.record.rid for p in _skyline_points(dataset)
        ]
        audit = fsck(report.dataset)
        assert audit["clean"], audit["problems"]
        assert report.to_dict()["replayed"] == report.replayed

    def test_recovery_is_idempotent(self, tmp_path):
        dataset = _dataset(n=15)
        manager = DurabilityManager(DurabilityConfig(tmp_path))
        manager.attach(dataset)
        self._churn(dataset, steps=4)
        manager.detach()
        first = recover(tmp_path)
        second = recover(tmp_path)
        assert first.dataset.update_version == second.dataset.update_version
        assert second.truncated_bytes == 0

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        dataset = _dataset(n=15)
        manager = DurabilityManager(DurabilityConfig(tmp_path))
        manager.attach(dataset)
        self._churn(dataset, steps=3)
        manager.checkpoint()
        manager.detach()
        snapshots = list_snapshots(tmp_path / SNAPSHOT_SUBDIR)
        assert len(snapshots) == 2
        newest = snapshots[-1]
        newest.write_text(newest.read_text()[:-40])  # corrupt it
        with pytest.warns(UserWarning, match="snapshot"):
            report = recover(tmp_path)
        from pathlib import Path

        assert Path(report.snapshot_path) != newest
        assert report.skipped_snapshots == [newest.name]
        # Fallback replays the WAL forward to the same final state.
        assert report.dataset.update_version == dataset.update_version
        assert fsck(report.dataset)["clean"]

    def test_no_usable_snapshot_raises(self, tmp_path):
        (tmp_path / SNAPSHOT_SUBDIR).mkdir(parents=True)
        (tmp_path / WAL_SUBDIR).mkdir(parents=True)
        with pytest.raises(DurabilityError, match="no usable snapshot"):
            recover(tmp_path)

    def test_lsn_gap_detected(self, tmp_path):
        dataset = _dataset(n=10)
        manager = DurabilityManager(DurabilityConfig(tmp_path))
        manager.attach(dataset)
        dataset.insert_record(_fresh_record(dataset, "a"))
        dataset.insert_record(_fresh_record(dataset, "b"))
        dataset.insert_record(_fresh_record(dataset, "c"))
        manager.detach()
        # Surgically remove the middle record (LSN 2) from the segment.
        wal = WriteAheadLog(tmp_path / WAL_SUBDIR)
        segment = wal.segments()[-1]
        frames = []
        data = segment.read_bytes()
        offset = 0
        while offset < len(data):
            length, _ = _HEADER.unpack_from(data, offset)
            end = offset + _HEADER.size + length
            frames.append(data[offset:end])
            offset = end
        segment.write_bytes(frames[0] + frames[2])
        with pytest.raises(DurabilityError, match="gap"):
            recover(tmp_path)

    def test_fsck_detects_tampering(self, tmp_path):
        dataset = _dataset(n=15)
        assert fsck(dataset)["clean"]
        # Drop a skyline point from the live set while leaving it in
        # the records: the from-scratch reference then disagrees.
        victim = _skyline_points(dataset)[0]
        dataset.points = [
            p for p in dataset.points if p.record.rid != victim.record.rid
        ]
        dataset._stratification = None
        dataset._index = None
        audit = fsck(dataset)
        assert not audit["clean"]
        assert audit["problems"]


# ---------------------------------------------------------------------------
# Server integration: durability wiring and read-only degradation
# ---------------------------------------------------------------------------
class TestServerDurability:
    def _server(self, tmp_path, **kwargs):
        from repro.serving.server import SkylineServer

        dataset = _dataset(seed=21, n=20)
        return SkylineServer(
            dataset, workers=1, durability=str(tmp_path), **kwargs
        )

    def test_server_writes_are_durable(self, tmp_path):
        server = self._server(tmp_path)
        try:
            server.insert(_fresh_record(server.dataset, "durable"))
            assert server.delete(server.dataset.records[0].rid)
            version = server.dataset.update_version
        finally:
            server.close()
        report = recover(tmp_path)
        assert report.dataset.update_version == version
        assert any(
            r.rid == "durable" for r in report.dataset.records
        )
        snapshot = server.metrics.snapshot()
        assert snapshot["durability"]["wal_appends"] == 2
        assert snapshot["durability"]["checkpoints"] >= 1

    def test_manual_checkpoint(self, tmp_path):
        server = self._server(tmp_path)
        try:
            server.insert(_fresh_record(server.dataset, "pre-cp"))
            path = server.checkpoint()
            assert path.exists()
        finally:
            server.close()

    def test_wal_failure_latches_read_only(self, tmp_path):
        from repro.exceptions import ServingError
        from repro.serving.server import QueryRequest

        server = self._server(tmp_path)
        try:
            def broken_append(entry):
                raise DurabilityError("device gone")

            server.durability.wal.append = broken_append
            with pytest.raises(DurabilityError):
                server.insert(_fresh_record(server.dataset, "lost"))
            assert server.read_only
            # Reads still serve while writes are refused...
            handle = server.submit(QueryRequest(algorithm="sdc+"))
            assert handle.result() is not None
            with pytest.raises(ServingError, match="read-only"):
                server.insert(_fresh_record(server.dataset, "more"))
            with pytest.raises(ServingError, match="read-only"):
                server.delete(server.dataset.records[0].rid)
            snapshot = server.metrics.snapshot()
            assert snapshot["durability"]["read_only"] is True
            assert snapshot["durability"]["wal_failures"] == 1
            # ...and the rejected write never reached the dataset.
            assert all(
                p.record.rid != "lost" for p in server.dataset.points
            )
        finally:
            server.close()

    def test_checkpoint_without_durability_raises(self):
        from repro.exceptions import ServingError
        from repro.serving.server import SkylineServer

        server = SkylineServer(_dataset(n=10), workers=1)
        try:
            with pytest.raises(ServingError, match="durability"):
                server.checkpoint()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Hardened post-commit listener registry
# ---------------------------------------------------------------------------
class TestHardenedListeners:
    def test_raising_listener_does_not_abort_commit(self):
        dataset = _dataset(n=10)
        seen = []

        def bad_listener(op, point):
            raise RuntimeError("listener bug")

        def good_listener(op, point):
            seen.append((op, point.record.rid))

        dataset.add_update_listener(bad_listener)
        dataset.add_update_listener(good_listener)
        with pytest.warns(UserWarning, match="listener bug"):
            dataset.insert_record(_fresh_record(dataset, "ok"))
        # The commit stands, later listeners still ran, failure counted.
        assert any(p.record.rid == "ok" for p in dataset.points)
        assert seen == [("insert", "ok")]
        assert sum(dataset.listener_failures.values()) == 1

    def test_failure_hook_feeds_metrics(self):
        from repro.serving.metrics import ServerMetrics

        dataset = _dataset(n=10)
        metrics = ServerMetrics()
        dataset._listener_failure_hook = metrics.on_listener_failure

        def bad_listener(op, point):
            raise ValueError("boom")

        dataset.add_update_listener(bad_listener)
        with pytest.warns(UserWarning):
            dataset.insert_record(_fresh_record(dataset, "x"))
        snapshot = metrics.snapshot()
        assert snapshot["listeners"]["failures_total"] == 1

    def test_broken_failure_hook_is_contained(self):
        dataset = _dataset(n=10)
        dataset._listener_failure_hook = lambda name: 1 / 0

        def bad_listener(op, point):
            raise ValueError("boom")

        dataset.add_update_listener(bad_listener)
        with pytest.warns(UserWarning):
            dataset.insert_record(_fresh_record(dataset, "x"))
        assert any(p.record.rid == "x" for p in dataset.points)


# ---------------------------------------------------------------------------
# Atomic bench artifacts (satellite: torn-artifact hardening)
# ---------------------------------------------------------------------------
class TestAtomicArtifacts:
    def test_write_leaves_no_temp(self, tmp_path):
        from repro.bench.artifacts import write_artifact

        target = tmp_path / "results" / "report.json"
        write_artifact(target, {"b": 2, "a": 1.23456789})
        assert json.loads(target.read_text()) == {"a": 1.234568, "b": 2}
        assert list(target.parent.glob("*.tmp")) == []

    def test_failed_write_preserves_previous(self, tmp_path, monkeypatch):
        import repro.bench.artifacts as artifacts

        target = tmp_path / "report.json"
        artifacts.write_artifact(target, {"version": 1})

        def broken_replace(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr(artifacts.os, "replace", broken_replace)
        with pytest.raises(OSError):
            artifacts.write_artifact(target, {"version": 2})
        # Old artifact intact, no temp litter.
        assert json.loads(target.read_text()) == {"version": 1}
        assert list(tmp_path.glob("*.tmp")) == []


# ---------------------------------------------------------------------------
# Replay baseline knee comparison (satellite: saturation regression)
# ---------------------------------------------------------------------------
class TestKneeComparison:
    def _report(self, p99s):
        return {
            "scenarios": {
                "steady": {
                    "cells": [
                        {"multiplier": m, "latency_p99_ms": p}
                        for m, p in p99s
                    ]
                }
            }
        }

    def test_saturation_knee_found(self):
        from repro.serving.replay import saturation_knee

        report = self._report([(1.0, 2.0), (2.0, 4.0), (4.0, 9.0)])
        assert saturation_knee(report, factor=3.0) == {"steady": 4.0}

    def test_saturation_knee_absent(self):
        from repro.serving.replay import saturation_knee

        report = self._report([(1.0, 2.0), (2.0, 2.5), (4.0, 3.0)])
        assert saturation_knee(report, factor=3.0) == {"steady": None}

    def test_left_shift_regresses(self):
        from repro.serving.replay import compare_baseline

        current = self._report([(1.0, 2.0), (2.0, 7.0), (4.0, 9.0)])
        baseline = self._report([(1.0, 2.0), (2.0, 4.0), (4.0, 9.0)])
        result = compare_baseline(current, baseline, tolerance=0.25)
        assert result["regressions"] == ["steady"]
        assert not result["ok"]
        assert result["scenarios"]["steady"]["current_knee"] == 2.0
        assert result["scenarios"]["steady"]["baseline_knee"] == 4.0

    def test_within_tolerance_ok(self):
        from repro.serving.replay import compare_baseline

        current = self._report([(1.0, 2.0), (2.0, 4.0), (4.0, 9.0)])
        baseline = self._report([(1.0, 2.0), (2.0, 4.0), (4.0, 9.0)])
        result = compare_baseline(current, baseline)
        assert result["ok"]
        assert result["regressions"] == []

    def test_losing_the_knee_never_regresses(self):
        from repro.serving.replay import compare_baseline

        current = self._report([(1.0, 2.0), (2.0, 2.1), (4.0, 2.2)])
        baseline = self._report([(1.0, 2.0), (2.0, 7.0), (4.0, 9.0)])
        assert compare_baseline(current, baseline)["ok"]

    def test_gaining_a_knee_where_none_existed_regresses(self):
        from repro.serving.replay import compare_baseline

        current = self._report([(1.0, 2.0), (2.0, 7.0), (4.0, 9.0)])
        baseline = self._report([(1.0, 2.0), (2.0, 2.1), (4.0, 2.2)])
        result = compare_baseline(current, baseline)
        assert result["regressions"] == ["steady"]
