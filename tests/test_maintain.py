"""Tests for incremental skyline maintenance under churn."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_mixed_dataset
from repro.core.record import Record
from repro.core.schema import NumericAttribute, Schema
from repro.exceptions import AlgorithmError
from repro.queries.maintain import MaintainedSkyline, apply_delete, apply_insert
from repro.transform.dataset import TransformedDataset


def numeric_maintained(values):
    schema = Schema([NumericAttribute("x"), NumericAttribute("y")])
    records = [Record(i, v) for i, v in enumerate(values)]
    dataset = TransformedDataset(schema, records)
    return MaintainedSkyline(dataset), schema


class TestInsert:
    def test_dominated_insert_changes_nothing(self):
        m, _ = numeric_maintained([(1, 1)])
        assert not m.insert(Record("new", (5, 5)))
        assert sorted(map(str, m._skyline)) == ["0"]
        assert m.verify()

    def test_dominating_insert_evicts(self):
        m, _ = numeric_maintained([(4, 4), (1, 9)])
        assert m.insert(Record("champ", (0, 0)))
        assert list(m._skyline) == ["champ"]
        assert m.verify()

    def test_incomparable_insert_joins(self):
        m, _ = numeric_maintained([(1, 9)])
        assert m.insert(Record("other", (9, 1)))
        assert len(m) == 2
        assert m.verify()

    def test_duplicate_rid_rejected(self):
        m, _ = numeric_maintained([(1, 1)])
        with pytest.raises(AlgorithmError):
            m.insert(Record(0, (2, 2)))

    def test_contains(self):
        m, _ = numeric_maintained([(1, 1), (5, 5)])
        assert 0 in m
        assert 1 not in m


class TestDelete:
    def test_delete_non_skyline_free(self):
        m, _ = numeric_maintained([(1, 1), (5, 5)])
        assert not m.delete(1)
        assert m.verify()

    def test_delete_skyline_promotes_shielded(self):
        # 0 dominates 1 and 2; removing 0 promotes both (incomparable).
        m, _ = numeric_maintained([(0, 0), (1, 5), (5, 1)])
        assert m.delete(0)
        assert sorted(m._skyline) == [1, 2]
        assert m.verify()

    def test_delete_promotion_respects_candidate_dominance(self):
        # 0 dominates 1 and 2, and 1 dominates 2: only 1 gets promoted.
        m, _ = numeric_maintained([(0, 0), (1, 1), (2, 2)])
        assert m.delete(0)
        assert sorted(m._skyline) == [1]
        assert m.verify()

    def test_delete_shielded_by_survivor(self):
        # two incomparable skyline members both dominate 2; deleting one
        # leaves 2 shielded.
        m, _ = numeric_maintained([(0, 5), (5, 0), (6, 6)])
        assert m.delete(0)
        assert sorted(m._skyline) == [1]
        assert m.verify()

    def test_delete_unknown_rid(self):
        m, _ = numeric_maintained([(1, 1)])
        with pytest.raises(AlgorithmError):
            m.delete("ghost")

    def test_records_accessor(self):
        m, _ = numeric_maintained([(1, 1)])
        assert [r.rid for r in m.records()] == [0]


class TestBatch:
    def test_apply_counts_changes(self):
        m, _ = numeric_maintained([(3, 3), (9, 9)])
        changed = m.apply(
            inserts=[Record("a", (1, 1)), Record("b", (8, 8))], deletes=[1]
        )
        assert changed == 1  # delete of 1 (non-skyline) and b are no-ops
        assert m.verify()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_churn_matches_recompute_property(seed):
    rng = random.Random(seed)
    schema, raw = random_mixed_dataset(rng, n=35)
    records = [Record(f"r{r.rid}", r.totals, r.partials) for r in raw]
    dataset = TransformedDataset(schema, records)
    maintained = MaintainedSkyline(dataset)
    alive = {r.rid: r for r in records}
    for step in range(15):
        if alive and rng.random() < 0.5:
            rid = rng.choice(sorted(alive))
            maintained.delete(rid)
            del alive[rid]
        else:
            template = records[rng.randrange(len(records))]
            record = Record(f"new-{step}", template.totals, template.partials)
            maintained.insert(record)
            alive[record.rid] = record
        assert maintained.verify(), f"diverged at step {step}"


@pytest.mark.parametrize("kernel", ["python", "numpy"])
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_lsn_order_replay_matches_recompute(kernel, seed):
    """WAL-replay invariant: folding committed update events through
    ``apply_insert``/``apply_delete`` in LSN (commit) order yields the
    same skyline as recomputing from scratch -- for both kernels.

    This is exactly how recovery and materialized views consume the
    log: one transition per committed event, in order, never a rebuild.
    """
    from repro.algorithms.base import get_algorithm

    rng = random.Random(seed)
    schema, raw = random_mixed_dataset(rng, n=30)
    dataset = TransformedDataset(schema, raw, kernel=kernel)
    skyline = {
        p.record.rid: p for p in get_algorithm("sdc+").run(dataset)
    }

    def replay(op, point):
        # Post-commit listener == LSN order: events arrive exactly once
        # per committed update, in commit order, post-rollback filtered.
        if op == "insert":
            apply_insert(skyline, point, dataset.kernel)
        else:
            apply_delete(skyline, point, dataset.points, dataset.kernel)

    dataset.add_update_listener(replay)
    alive = [r.rid for r in raw]
    for step in range(12):
        if alive and rng.random() < 0.45:
            dataset.delete_record(alive.pop(rng.randrange(len(alive))))
        else:
            template = raw[rng.randrange(len(raw))]
            record = Record(f"churn-{step}", template.totals, template.partials)
            dataset.insert_record(record)
            alive.append(record.rid)
        expected = {
            p.record.rid for p in get_algorithm("sdc+").run(dataset)
        }
        assert set(skyline) == expected, f"replay diverged at step {step}"
