"""EmissionChannel semantics and the end-to-end prefix-streaming property.

The channel is the spine of progressive delivery: every point an
algorithm emits flows through it, and every subscriber -- no matter when
it attaches -- must observe exactly the emission prefix, exactly once.
The property test at the bottom closes the loop: for all 8 algorithms x
both kernels, the concatenation of the batches a subscriber receives
equals the channel contents and is a prefix of the algorithm's serial
emission order, including under deadline expiry, budget exhaustion and
seeded chaos faults.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.engine import SkylineEngine
from repro.exceptions import (
    BudgetExhaustedError,
    KernelError,
    QueryTimeoutError,
)
from repro.net.stream import EVENT_POINTS, EVENT_RESET, EmissionChannel
from repro.posets.builder import diamond
from repro.resilience import QueryContext, ResourceBudget, execute
from repro.resilience.chaos import FaultInjector, inject_kernel_faults

ALL_ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+", "nn+", "dnc")
KERNELS = ("python", "numpy")


def _mixed_engine(kernel: str = "python", n: int = 150) -> SkylineEngine:
    rng = random.Random(23)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


class _Recorder:
    """Subscriber that replays the channel protocol into local state."""

    def __init__(self) -> None:
        self.batches: list[list] = []
        self.resets = 0
        self.received: list = []

    def __call__(self, event: str, batch: list) -> None:
        if event == EVENT_RESET:
            self.resets += 1
            self.received = []
        else:
            assert event == EVENT_POINTS
            self.batches.append(list(batch))
            self.received.extend(batch)


class TestEmissionChannel:
    def test_append_extend_notify_in_order(self):
        ch = EmissionChannel()
        rec = _Recorder()
        ch.subscribe(rec)
        ch.append("a")
        ch.extend(["b", "c"])
        ch.extend([])  # empty extends are not events
        assert rec.received == ["a", "b", "c"]
        assert rec.batches == [["a"], ["b", "c"]]
        assert list(ch) == ["a", "b", "c"]

    def test_late_subscriber_replays_prefix_exactly_once(self):
        ch = EmissionChannel()
        ch.extend(["a", "b"])
        rec = _Recorder()
        ch.subscribe(rec, replay=True)
        ch.append("c")
        assert rec.received == ["a", "b", "c"]
        # The replayed prefix arrives as one batch, then live batches.
        assert rec.batches == [["a", "b"], ["c"]]

    def test_subscribe_without_replay_sees_only_new_points(self):
        ch = EmissionChannel()
        ch.extend(["a", "b"])
        rec = _Recorder()
        ch.subscribe(rec, replay=False)
        ch.append("c")
        assert rec.received == ["c"]

    def test_reset_retracts_and_bumps_generation(self):
        ch = EmissionChannel()
        rec = _Recorder()
        ch.subscribe(rec)
        ch.extend(["a", "b"])
        gen = ch.generation
        ch.reset()
        assert ch.generation == gen + 1
        assert list(ch) == []
        assert rec.resets == 1
        ch.extend(["x"])
        assert rec.received == ["x"]

    def test_full_slice_delete_routes_to_reset(self):
        ch = EmissionChannel()
        rec = _Recorder()
        ch.subscribe(rec)
        ch.extend(["a", "b"])
        del ch[:]  # the retry path's historical idiom
        assert rec.resets == 1
        assert list(ch) == []

    def test_partial_delete_rejected(self):
        ch = EmissionChannel()
        ch.extend(["a", "b", "c"])
        with pytest.raises(TypeError):
            del ch[0]
        with pytest.raises(TypeError):
            del ch[0:2]

    def test_unsubscribe_stops_delivery(self):
        ch = EmissionChannel()
        rec = _Recorder()
        unsubscribe = ch.subscribe(rec)
        ch.append("a")
        unsubscribe()
        unsubscribe()  # idempotent
        ch.append("b")
        assert rec.received == ["a"]

    def test_broken_subscriber_dropped_others_survive(self):
        ch = EmissionChannel()
        rec = _Recorder()

        def broken(event, batch):
            raise RuntimeError("subscriber bug")

        ch.subscribe(broken)
        ch.subscribe(rec)
        ch.extend(["a"])
        ch.extend(["b"])  # broken one is gone by now
        assert rec.received == ["a", "b"]

    def test_snapshot_is_isolated_copy(self):
        ch = EmissionChannel()
        ch.extend(["a"])
        snap = ch.snapshot()
        ch.append("b")
        assert snap == ["a"]

    def test_concurrent_writers_deliver_every_point(self):
        ch = EmissionChannel()
        received = []
        lock = threading.Lock()

        def collect(event, batch):
            with lock:
                received.extend(batch)

        ch.subscribe(collect)

        def writer(base):
            for i in range(200):
                ch.append(base + i)

        threads = [
            threading.Thread(target=writer, args=(base,))
            for base in (0, 1000, 2000)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(received) == sorted(ch)
        assert len(received) == 600


def _run_with_channel(dataset, algorithm, context=None):
    """Execute with an EmissionChannel sink + live subscriber attached.

    Returns ``(recorder, channel, partial_or_error)``.
    """
    channel = EmissionChannel()
    rec = _Recorder()
    channel.subscribe(rec)
    try:
        partial = execute(dataset, algorithm, context, sink=channel)
        return rec, channel, partial
    except (QueryTimeoutError, BudgetExhaustedError, KernelError) as err:
        return rec, channel, err


def _assert_prefix(rec: _Recorder, channel: EmissionChannel, full: list) -> None:
    got = rec.received
    assert got == list(channel)
    assert got == full[: len(got)]


class TestPrefixStreamingProperty:
    """Concatenated batches == channel contents == emission-order prefix."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_full_run_streams_complete_emission_order(self, algorithm, kernel):
        if kernel == "numpy":
            pytest.importorskip("numpy")
        engine = _mixed_engine(kernel)
        reference = execute(engine.dataset, algorithm).points
        rec, channel, outcome = _run_with_channel(engine.dataset, algorithm)
        assert outcome.complete
        _assert_prefix(rec, channel, reference)
        assert rec.received == reference  # complete => the whole order

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_budget_exhaustion_streams_a_prefix(self, algorithm, kernel):
        if kernel == "numpy":
            pytest.importorskip("numpy")
        engine = _mixed_engine(kernel)
        reference = execute(engine.dataset, algorithm).points
        ctx = QueryContext(budget=ResourceBudget(max_comparisons=400))
        rec, channel, outcome = _run_with_channel(
            engine.dataset, algorithm, ctx
        )
        _assert_prefix(rec, channel, reference)

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_answer_budget_streams_a_prefix(self, algorithm):
        engine = _mixed_engine("python")
        reference = execute(engine.dataset, algorithm).points
        ctx = QueryContext(budget=ResourceBudget(max_answers=3))
        rec, channel, outcome = _run_with_channel(
            engine.dataset, algorithm, ctx
        )
        _assert_prefix(rec, channel, reference)
        assert len(rec.received) <= max(3, len(reference))

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_expired_deadline_streams_a_prefix(self, algorithm):
        engine = _mixed_engine("python")
        reference = execute(engine.dataset, algorithm).points
        ctx = QueryContext(deadline=1e-9)
        rec, channel, outcome = _run_with_channel(
            engine.dataset, algorithm, ctx
        )
        _assert_prefix(rec, channel, reference)

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_chaos_faults_stream_a_prefix(self, algorithm, kernel):
        if kernel == "numpy":
            pytest.importorskip("numpy")
        engine = _mixed_engine(kernel)
        reference = execute(engine.dataset, algorithm).points
        inject_kernel_faults(
            engine.dataset, FaultInjector(seed=5, fail_after=50, max_faults=1)
        )
        rec, channel, outcome = _run_with_channel(
            engine.dataset, algorithm
        )
        _assert_prefix(rec, channel, reference)
