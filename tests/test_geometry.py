"""Tests for MBR arithmetic (:mod:`repro.rtree.geometry`)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.geometry import (
    mbr_of_points,
    mbr_of_rects,
    point_rect_distance2,
    rect_area,
    rect_center,
    rect_contains,
    rect_contains_point,
    rect_enlargement,
    rect_margin,
    rect_overlap,
    rect_union,
    rect_union_point,
)


class TestBasics:
    def test_area(self):
        assert rect_area((0, 0), (2, 3)) == 6

    def test_area_degenerate(self):
        assert rect_area((1, 1), (1, 5)) == 0

    def test_margin(self):
        assert rect_margin((0, 0), (2, 3)) == 5

    def test_union(self):
        mins, maxs = rect_union((0, 0), (1, 1), (2, -1), (3, 0.5))
        assert mins == (0, -1) and maxs == (3, 1)

    def test_union_point(self):
        mins, maxs = rect_union_point((0, 0), (1, 1), (2, -5))
        assert mins == (0, -5) and maxs == (2, 1)

    def test_overlap_positive(self):
        assert rect_overlap((0, 0), (2, 2), (1, 1), (3, 3)) == 1

    def test_overlap_disjoint(self):
        assert rect_overlap((0, 0), (1, 1), (2, 2), (3, 3)) == 0

    def test_overlap_touching_is_zero(self):
        assert rect_overlap((0, 0), (1, 1), (1, 0), (2, 1)) == 0

    def test_contains(self):
        assert rect_contains((0, 0), (4, 4), (1, 1), (2, 2))
        assert not rect_contains((0, 0), (4, 4), (1, 1), (5, 2))

    def test_contains_point(self):
        assert rect_contains_point((0, 0), (2, 2), (2, 0))
        assert not rect_contains_point((0, 0), (2, 2), (2.1, 0))

    def test_enlargement_zero_inside(self):
        assert rect_enlargement((0, 0), (2, 2), (1, 1)) == 0

    def test_enlargement_outside(self):
        assert rect_enlargement((0, 0), (2, 2), (4, 1)) == 4

    def test_center(self):
        assert rect_center((0, 2), (4, 4)) == (2, 3)

    def test_point_rect_distance(self):
        assert point_rect_distance2((0, 0), (1, 1), (2, 2)) == 2
        assert point_rect_distance2((1.5, 1.5), (1, 1), (2, 2)) == 0

    def test_mbr_of_points(self):
        mins, maxs = mbr_of_points([(1, 5), (3, 2), (2, 4)])
        assert mins == (1, 2) and maxs == (3, 5)

    def test_mbr_of_rects(self):
        mins, maxs = mbr_of_rects([((0, 0), (1, 1)), ((2, -1), (3, 0))])
        assert mins == (0, -1) and maxs == (3, 1)


coords = st.tuples(
    st.floats(-100, 100, allow_nan=False), st.floats(-100, 100, allow_nan=False)
)


def _rect(a, b):
    return tuple(map(min, zip(a, b))), tuple(map(max, zip(a, b)))


@settings(max_examples=100, deadline=None)
@given(a=coords, b=coords, c=coords, d=coords)
def test_union_contains_both(a, b, c, d):
    r1 = _rect(a, b)
    r2 = _rect(c, d)
    mins, maxs = rect_union(r1[0], r1[1], r2[0], r2[1])
    assert rect_contains(mins, maxs, *r1)
    assert rect_contains(mins, maxs, *r2)


@settings(max_examples=100, deadline=None)
@given(a=coords, b=coords, c=coords, d=coords)
def test_overlap_symmetric_and_bounded(a, b, c, d):
    r1 = _rect(a, b)
    r2 = _rect(c, d)
    o12 = rect_overlap(r1[0], r1[1], r2[0], r2[1])
    o21 = rect_overlap(r2[0], r2[1], r1[0], r1[1])
    assert abs(o12 - o21) < 1e-9
    assert o12 <= min(rect_area(*r1), rect_area(*r2)) + 1e-9


@settings(max_examples=100, deadline=None)
@given(a=coords, b=coords, p=coords)
def test_enlargement_nonnegative(a, b, p):
    r = _rect(a, b)
    assert rect_enlargement(r[0], r[1], p) >= -1e-9
