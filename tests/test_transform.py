"""Tests for the transform layer (mappings, points, datasets, strata)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_mixed_dataset, record_dominates
from repro.core.categories import Category
from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.exceptions import SchemaError
from repro.posets.builder import diamond
from repro.transform.dataset import TransformedDataset
from repro.transform.mapping import DomainMapping, build_mappings
from repro.transform.stratification import stratify


class TestDomainMapping:
    def test_per_node_arrays_match_components(self, medium_poset):
        attr = PosetAttribute.set_valued("p", medium_poset)
        mapping = DomainMapping.build(attr, "default")
        enc, cls = mapping.encoding, mapping.classification
        for i in range(len(medium_poset)):
            assert mapping.normalized_ix(i) == enc.normalized_ix(i)
            assert mapping.covered_ix(i) == cls.is_completely_covered_ix(i)
            assert mapping.covering_ix(i) == cls.is_completely_covering_ix(i)
            assert mapping.level_ix(i) == cls.uncovered_level_ix(i)
            assert mapping.native_set_ix(i) == attr.set_domain.set_of_ix(i)

    def test_reachability_mode_has_no_sets(self, medium_poset):
        mapping = DomainMapping.build(PosetAttribute("p", medium_poset))
        assert mapping.native_set_ix(0) is None

    def test_build_mappings_one_per_partial(self, medium_poset):
        schema = Schema(
            [
                NumericAttribute("x"),
                PosetAttribute.set_valued("p0", medium_poset),
                PosetAttribute.set_valued("p1", diamond()),
            ]
        )
        mappings = build_mappings(schema)
        assert len(mappings) == 2
        assert mappings[0].attribute.name == "p0"

    def test_max_level(self, medium_poset):
        mapping = DomainMapping.build(PosetAttribute("p", medium_poset))
        assert mapping.max_level == max(
            mapping.level_ix(i) for i in range(len(medium_poset))
        )

    def test_explicit_forest_pinning(self):
        """``forests=`` reproduces a chosen spanning tree exactly."""
        from repro.posets.builder import PAPER_FIG4_SPANNING_EDGES, paper_example_poset
        from repro.posets.spanning_tree import SpanningForest

        poset = paper_example_poset()
        forest = SpanningForest.from_edge_choice(poset, PAPER_FIG4_SPANNING_EDGES)
        schema = Schema([PosetAttribute.set_valued("rank", poset)])
        d = TransformedDataset(schema, [], forests={"rank": forest})
        assert d.mappings[0].forest is forest

    def test_explicit_forest_wrong_poset_rejected(self):
        from repro.posets.builder import chain
        from repro.posets.spanning_tree import default_spanning_forest

        schema = Schema([PosetAttribute.set_valued("tier", diamond())])
        with pytest.raises(SchemaError):
            TransformedDataset(
                schema, [], forests={"tier": default_spanning_forest(chain("ab"))}
            )


class TestPointTransform:
    def make_dataset(self):
        schema = Schema(
            [
                NumericAttribute("price", "min"),
                NumericAttribute("rating", "max"),
                PosetAttribute.set_valued("tier", diamond()),
            ]
        )
        records = [
            Record(0, (100, 4), ("a",)),
            Record(1, (200, 2), ("d",)),
        ]
        return TransformedDataset(schema, records)

    def test_vector_layout(self):
        d = self.make_dataset()
        p = d.points[0]
        assert len(p.vector) == 4
        assert p.vector[0] == 100  # min attribute unchanged
        assert p.vector[1] == -4  # max attribute negated

    def test_key_is_vector_sum(self):
        d = self.make_dataset()
        for p in d.points:
            assert p.key == pytest.approx(sum(p.vector))

    def test_diamond_categories(self):
        d = self.make_dataset()
        # Default forest keeps (a,b),(a,c),(b,d): c is partially covering;
        # d is partially covered.
        cats = {p.record.rid: p.category for p in d.points}
        assert cats[0] is Category.CP  # value 'a': covered, partially covering
        assert cats[1] is Category.PC  # value 'd': partially covered, covering

    def test_record_level_is_max_of_attrs(self, medium_poset):
        schema = Schema(
            [
                PosetAttribute.set_valued("p0", medium_poset),
                PosetAttribute.set_valued("p1", diamond()),
            ]
        )
        d = TransformedDataset(schema, [])
        m0, m1 = d.mappings
        v0 = max(range(len(medium_poset)), key=m0.level_ix)
        record = Record(0, (), (medium_poset.value(v0), "a"))
        point = d.transform(record)
        assert point.level == max(m0.level_ix(v0), m1.level_ix(m1.node_index("a")))

    def test_invalid_record_rejected(self):
        d = self.make_dataset()
        with pytest.raises(SchemaError):
            d.transform(Record(9, (1,), ("a",)))

    def test_m_dominance_via_vectors_matches_definition(self):
        """m-dominance on vectors == totals-dominance + interval
        containment per Section 4.2."""
        d = self.make_dataset()
        p0, p1 = d.points
        # a contains d in the diamond encoding, and p0 beats p1 on both
        # numeric attributes, so p0 m-dominates p1.
        assert d.kernel.m_dominates(p0, p1)
        assert not d.kernel.m_dominates(p1, p0)


class TestDataset:
    def test_counts(self, small_dataset):
        counts = small_dataset.category_counts()
        assert sum(counts.values()) == len(small_dataset)

    def test_index_contains_everything(self, small_dataset):
        tree = small_dataset.index
        assert len(tree) == len(small_dataset)
        tree.validate()

    def test_index_cached(self, small_dataset):
        assert small_dataset.index is small_dataset.index

    def test_dynamic_build(self, small_workload):
        d = TransformedDataset(
            small_workload.schema,
            small_workload.records[:100],
            bulk_load=False,
            max_entries=8,
        )
        d.index.validate()
        assert len(d.index) == 100

    def test_stratification_cached(self, small_dataset):
        assert small_dataset.stratification is small_dataset.stratification


class TestSubsetView:
    def test_view_shares_kernel_and_mappings(self, small_dataset):
        view = small_dataset.subset_view(small_dataset.points[:50])
        assert view.kernel is small_dataset.kernel
        assert view.mappings is small_dataset.mappings
        assert view.stats is small_dataset.stats
        assert len(view) == 50

    def test_view_builds_own_index(self, small_dataset):
        small_dataset.index
        view = small_dataset.subset_view(small_dataset.points[:30])
        assert view.index is not small_dataset.index
        assert len(view.index) == 30

    def test_view_queryable(self, small_dataset, small_truth):
        from repro.algorithms.base import get_algorithm

        view = small_dataset.subset_view(list(small_dataset.points))
        got = sorted(p.record.rid for p in get_algorithm("sdc+").run(view))
        assert got == small_truth

    def test_empty_view(self, small_dataset):
        view = small_dataset.subset_view([])
        assert len(view) == 0
        assert view.stratification.num_strata == 0


class TestStratification:
    def test_partition_is_exact(self, small_dataset):
        strat = stratify(small_dataset)
        total = sum(len(s) for s in strat)
        assert total == len(small_dataset)

    def test_stratum_homogeneous(self, small_dataset):
        for stratum in stratify(small_dataset):
            for p in stratum.points:
                assert p.category is stratum.category
                if not stratum.category.completely_covered:
                    assert p.level == stratum.level

    def test_order_covered_first_then_levels(self, small_dataset):
        strata = list(stratify(small_dataset))
        labels = [s.label for s in strata]
        # (c,p) before (c,c) before any partially covered stratum.
        covered = [i for i, s in enumerate(strata) if s.category.completely_covered]
        partial = [
            i for i, s in enumerate(strata) if not s.category.completely_covered
        ]
        if covered and partial:
            assert max(covered) < min(partial), labels
        # Levels non-decreasing among partial strata, and (p,p) before
        # (p,c) within one level.
        last = (0, 0)
        for i in partial:
            s = strata[i]
            key = (s.level, 0 if s.category is Category.PP else 1)
            assert key >= last, labels
            last = key

    def test_no_later_stratum_dominates_earlier_local_skyline(self, small_dataset):
        """The core stratification guarantee behind SDC+ (Section 4.6.1)."""
        kernel = small_dataset.kernel
        strata = list(stratify(small_dataset))
        for i, stratum in enumerate(strata):
            # Local skyline of the stratum alone.
            local = []
            for p in stratum.points:
                if not any(
                    kernel.native_dominates(q, p) for q in stratum.points if q is not p
                ):
                    local.append(p)
            for later in strata[i + 1 :]:
                for q in later.points:
                    for p in local:
                        assert not kernel.native_dominates(q, p)

    def test_stratum_trees_hold_their_points(self, small_dataset):
        for stratum in stratify(small_dataset):
            assert stratum.tree.size == len(stratum)

    def test_empty_strata_dropped(self, small_dataset):
        for stratum in stratify(small_dataset):
            assert len(stratum) > 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_stratification_guarantee_property(seed):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=40)
    d = TransformedDataset(schema, records)
    strata = list(stratify(d))
    assert sum(len(s) for s in strata) == len(records)
    for i, stratum in enumerate(strata):
        for later in strata[i + 1 :]:
            for q in later.points:
                for p in stratum.points:
                    # A later-stratum point may dominate an earlier-stratum
                    # point only if that point is dominated *within* its own
                    # stratum or earlier (i.e. not a local skyline point).
                    if record_dominates(schema, q.record, p.record):
                        assert any(
                            record_dominates(schema, w.record, p.record)
                            for j in range(i + 1)
                            for w in strata[j].points
                            if w is not p
                        )
