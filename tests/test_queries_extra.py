"""Additional property coverage for the query extensions."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline, random_mixed_dataset
from repro.queries.constrained import Constraint, constrained_skyline
from repro.queries.skyband import k_skyband_bbs, k_skyband_nested_loops
from repro.queries.layers import skyline_layers
from repro.transform.dataset import TransformedDataset


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_constrained_poset_anchor_property(seed):
    """must_dominate / dominated_by anchors match the brute-force filter
    for arbitrary anchors in the attribute's domain."""
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=40)
    d = TransformedDataset(schema, records)
    poset = schema.partial_attrs[0].poset
    anchor = poset.value(rng.randrange(len(poset)))

    for kind in ("must_dominate", "dominated_by"):
        constraint = Constraint(**{kind: {"p0": anchor}})
        if kind == "must_dominate":
            keep = [r for r in records if poset.leq(anchor, r.partials[0])]
        else:
            keep = [r for r in records if poset.leq(r.partials[0], anchor)]
        expected = brute_force_skyline(schema, keep)
        for method in ("bbs", "bnl"):
            got = sorted(
                p.record.rid for p in constrained_skyline(d, constraint, method)
            )
            assert got == expected, (kind, method)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 5))
def test_skyband_methods_agree_under_closure_backend(seed, k):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=35)
    d = TransformedDataset(schema, records, native_mode="closure")
    a = sorted(p.record.rid for p in k_skyband_bbs(d, k))
    b = sorted(p.record.rid for p in k_skyband_nested_loops(d, k))
    assert a == b


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_layers_on_churned_dataset(seed):
    """Layer peeling stays correct after incremental inserts/deletes."""
    rng = random.Random(seed)
    schema, raw = random_mixed_dataset(rng, n=30)
    from repro.core.record import Record

    records = [Record(f"r{r.rid}", r.totals, r.partials) for r in raw]
    d = TransformedDataset(schema, records)
    d.index
    # Churn: drop 5, add 5 copies.
    for r in records[:5]:
        d.delete_record(r.rid)
    clones = [
        Record(f"c{i}", records[10 + i].totals, records[10 + i].partials)
        for i in range(5)
    ]
    for c in clones:
        d.insert_record(c)
    current = records[5:] + clones

    remaining = list(current)
    for layer in skyline_layers(d):
        rids = sorted(p.record.rid for p in layer)
        assert rids == brute_force_skyline(schema, remaining)
        chosen = set(rids)
        remaining = [r for r in remaining if r.rid not in chosen]
    assert not remaining


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_skyband_contains_every_layer_up_to_k(seed):
    """The k-skyband always contains the first layer; deeper layers may
    exceed k dominators, but layer 1 never does."""
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=30)
    d = TransformedDataset(schema, records)
    band = {p.record.rid for p in k_skyband_bbs(d, 2)}
    first_layer = set(brute_force_skyline(schema, records))
    assert first_layer <= band
