"""Workload traces and the chaos replay harness.

Trace generation must be bit-deterministic per seed (the foundation of
reproducible capacity envelopes), and the replay harness must uphold the
graceful-degradation invariants under bursty load with injected faults:
no hung :class:`~repro.serving.server.QueryHandle`, every completed
answer identical to a serial run, shed/failed queries carrying empty
(prefix) partials, and the server back at ``healthy`` after the fault
window.
"""

from __future__ import annotations

import random

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.exceptions import WorkloadError
from repro.posets.builder import diamond
from repro.serving import QueryRequest, SkylineServer
from repro.serving.overload import OverloadConfig, RetryPolicy
from repro.serving.replay import replay_trace, run_replay
from repro.workloads.trace import SCENARIOS, generate_trace

TRACE_SEEDS = (7, 101, 2025)


def _make_engine(kernel: str = "python", n: int = 100):
    from repro.engine import SkylineEngine

    rng = random.Random(31)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("x", "min"),
            NumericAttribute("y", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 50), rng.randint(1, 50)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


# ---------------------------------------------------------------------------
# Trace generation
# ---------------------------------------------------------------------------
class TestTraceGeneration:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("seed", TRACE_SEEDS)
    def test_same_seed_identical_schedule(self, scenario, seed):
        kwargs = dict(duration=5.0, rate=25.0, seed=seed,
                      algorithms=("sdc+", "bbs+"), deadline=0.4)
        a = generate_trace(scenario, **kwargs)
        b = generate_trace(scenario, **kwargs)
        assert a == b  # frozen dataclasses: full structural equality
        assert a.events == b.events

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_different_seeds_differ(self, scenario):
        a = generate_trace(scenario, duration=5.0, rate=25.0, seed=1)
        b = generate_trace(scenario, duration=5.0, rate=25.0, seed=2)
        assert a.events != b.events

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_arrivals_sorted_and_in_range(self, scenario):
        trace = generate_trace(scenario, duration=5.0, rate=25.0, seed=7)
        times = [e.at for e in trace.events]
        assert times == sorted(times)
        assert all(0.0 <= t < 5.0 for t in times)
        assert len(trace) > 0

    def test_mean_rates_comparable_across_scenarios(self):
        # All scenarios are normalized to the same mean rate, so cell
        # rows of the capacity envelope are comparable.  Average over
        # seeds to damp process variance.
        counts = {}
        for scenario in SCENARIOS:
            totals = [
                len(generate_trace(scenario, duration=20.0, rate=20.0, seed=s))
                for s in range(5)
            ]
            counts[scenario] = sum(totals) / len(totals)
        expected = 20.0 * 20.0
        for scenario, mean in counts.items():
            assert 0.5 * expected < mean < 1.6 * expected, (scenario, mean)

    def test_bursty_is_actually_bursty(self):
        trace = generate_trace("bursty", duration=20.0, rate=20.0, seed=7)
        # Bin arrivals into seconds; on/off modulation should produce
        # both near-idle and well-over-mean bins.
        bins = [0] * 20
        for event in trace.events:
            bins[min(19, int(event.at))] += 1
        assert min(bins) < 10 < max(bins), bins

    def test_scaled_compresses_time_only(self):
        base = generate_trace("poisson", duration=8.0, rate=10.0, seed=7)
        fast = base.scaled(4.0)
        assert len(fast) == len(base)
        assert fast.duration == pytest.approx(2.0)
        assert fast.rate == pytest.approx(40.0)
        for orig, scaled in zip(base.events, fast.events):
            assert scaled.at == pytest.approx(orig.at / 4.0)
            assert scaled.algorithm == orig.algorithm
            assert scaled.priority == orig.priority
        with pytest.raises(WorkloadError):
            base.scaled(0.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_trace("weekly")
        with pytest.raises(WorkloadError):
            generate_trace("poisson", duration=-1.0)
        with pytest.raises(WorkloadError):
            generate_trace("poisson", algorithms=())


# ---------------------------------------------------------------------------
# FaultInjector edge cases (satellite coverage)
# ---------------------------------------------------------------------------
class TestFaultInjectorEdges:
    def test_max_faults_zero_never_fires(self):
        from repro.resilience.chaos import FaultInjector

        injector = FaultInjector(seed=7, rate=1.0, max_faults=0)
        for _ in range(100):
            injector.maybe_fail("site")  # must never raise
        assert injector.fired == 0
        assert injector.calls == 100

    def test_rate_mode_deterministic_under_shared_concurrent_use(self):
        # The trip decision depends only on the call index drawn from
        # the seeded RNG under the injector lock -- so the *number* of
        # fired faults is identical no matter how many threads share
        # the injector or how they interleave.
        import threading

        from repro.exceptions import KernelError
        from repro.resilience.chaos import FaultInjector

        def run(threads: int, calls_per_thread: int) -> int:
            injector = FaultInjector(seed=42, rate=0.05, max_faults=1_000)
            fired = [0] * threads

            def hammer(k: int) -> None:
                for _ in range(calls_per_thread):
                    try:
                        injector.maybe_fail(f"t{k}")
                    except KernelError:
                        fired[k] += 1

            pool = [
                threading.Thread(target=hammer, args=(k,))
                for k in range(threads)
            ]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            assert sum(fired) == injector.fired
            return injector.fired

        serial = run(1, 400)
        assert serial > 0
        assert run(4, 100) == serial
        assert run(8, 50) == serial


# ---------------------------------------------------------------------------
# Replay harness + chaos invariants
# ---------------------------------------------------------------------------
@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestChaosReplay:
    def test_bursty_chaos_replay_invariants(self):
        """The acceptance scenario: bursty overload + worker kill +
        kernel faults, asserted end to end."""
        from repro.resilience.chaos import (
            FaultInjector,
            inject_kernel_faults,
            inject_worker_faults,
        )

        engine = _make_engine("python", n=100)
        reference = sorted(p.record.rid for p in engine.query("sdc+").points)

        engine2 = _make_engine("python", n=100)
        server = SkylineServer(
            engine2,
            workers=3,
            max_pending=1000,
            overload=OverloadConfig(
                queue_capacity=8,
                shed_policy="deadline",
                retry=RetryPolicy(max_attempts=3, base_delay=0.01,
                                  max_delay=0.02, seed=7),
                watchdog_interval=0.02,
                death_window=0.3,
                recovery_window=0.05,
            ),
        )
        inject_worker_faults(
            server,
            FaultInjector(seed=101, fail_after=3, max_faults=1,
                          fault_type=SystemExit),
        )
        inject_kernel_faults(
            engine2.dataset,
            FaultInjector(seed=102, rate=0.02, max_faults=4),
        )
        trace = generate_trace(
            "bursty", duration=1.5, rate=60.0, seed=7,
            algorithms=("sdc+",), deadline=0.5,
        )
        try:
            cell = replay_trace(server, trace, grace=15.0)
            # Invariant 1: nothing hangs, every handle reaches a typed
            # terminal state.
            assert cell["hung"] == 0
            assert (
                cell["completed"] + cell["shed"] + cell["rejected"]
                + cell["timeouts"] + cell["errors"] + cell["cancelled"]
                == cell["offered"]
            )
            assert cell["completed"] > 0
            # Invariant 2: the worker kill was absorbed.
            assert server.metrics.worker_deaths == 1
            assert server.metrics.worker_restarts == 1
            # Invariant 3: the server walks back to healthy after the
            # fault window.
            import time

            deadline = time.monotonic() + 5.0
            while server.mode != "healthy" and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.mode == "healthy"
            # Invariant 4: post-chaos answers are bit-identical to the
            # serial reference.
            result = server.submit(QueryRequest(algorithm="sdc+")).result(
                timeout=10.0
            )
            assert sorted(p.record.rid for p in result.points) == reference
        finally:
            server.close()

    def test_completed_answers_match_serial_under_load(self):
        engine = _make_engine("python", n=100)
        reference = sorted(p.record.rid for p in engine.query("sdc+").points)
        engine2 = _make_engine("python", n=100)
        server = SkylineServer(
            engine2, workers=3, max_pending=1000,
            overload=OverloadConfig(queue_capacity=16, watchdog=False),
        )
        trace = generate_trace(
            "bursty", duration=1.0, rate=80.0, seed=2025, algorithms=("sdc+",)
        )
        handles = []
        try:
            import time

            start = time.perf_counter()
            for event in trace.events:
                delay = (start + event.at) - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    handles.append(
                        server.submit(QueryRequest(algorithm=event.algorithm))
                    )
                except Exception:
                    pass  # shed/rejected at submit: fine under load
            completed = 0
            for handle in handles:
                try:
                    result = handle.result(timeout=15.0)
                except TimeoutError:
                    pytest.fail("hung QueryHandle under bursty load")
                except Exception as err:
                    # Shed handles must carry an empty prefix partial.
                    partial = getattr(err, "partial", None)
                    if partial is not None:
                        assert list(partial.points) == []
                    continue
                completed += 1
                assert sorted(p.record.rid for p in result.points) == reference
            assert completed > 0
        finally:
            server.close()

    def test_run_replay_report_shape(self, tmp_path):
        out = tmp_path / "replay.json"
        report = run_replay(
            size=60,
            scenarios=("poisson", "bursty", "diurnal"),
            duration=0.5,
            rate=20.0,
            multipliers=(1.0, 2.0),
            workers=2,
            seed=7,
            capacity=8,
            grace=10.0,
            output=str(out),
        )
        assert set(report["scenarios"]) == {"poisson", "bursty", "diurnal"}
        for row in report["scenarios"].values():
            assert len(row["cells"]) == 2
            for cell in row["cells"]:
                assert cell["hung"] == 0
                for key in ("offered", "completed", "shed", "rejected",
                            "timeouts", "errors", "latency_p50_ms",
                            "latency_p99_ms", "final_mode",
                            "returned_healthy", "multiplier"):
                    assert key in cell
        # The artifact is canonical: re-encoding is byte-stable.
        import json

        from repro.bench.artifacts import dumps_artifact

        text = out.read_text()
        assert text == dumps_artifact(json.loads(text))
        assert text.endswith("\n")

    def test_artifact_canonical_form(self):
        from repro.bench.artifacts import canonical, dumps_artifact

        raw = {
            "b": 0.1234567891,
            "a": (1, 2.000000049),
            "nested": {"z": float("nan"), "y": -0.0},
            "flag": True,
        }
        norm = canonical(raw)
        assert norm["b"] == 0.123457
        assert norm["a"] == [1, 2.0]
        assert norm["nested"]["z"] is None
        assert str(norm["nested"]["y"]) == "0.0"
        # Deterministic: same input, same bytes, keys sorted.
        assert dumps_artifact(raw) == dumps_artifact(dict(reversed(raw.items())))
        lines = dumps_artifact(raw).splitlines()
        assert lines[1].strip().startswith('"a"')
