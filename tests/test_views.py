"""Materialized views + result cache: keys, cache, manager, serving.

Covers the views layer bottom-up: canonical query-shape keys
(algorithm/kernel-independent), LRU + byte-budget cache mechanics,
incremental view maintenance parity against recomputation, region-aware
invalidation, the server's O(answer) hit path (zero dominance
comparisons, bit-identical to a cold recompute for all 8 algorithms),
shaped query execution, shape-conditioned admission estimates, and the
rollback guarantee (a failed update never invalidates the cache).
"""

from __future__ import annotations

import random

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.engine import SkylineEngine
from repro.exceptions import KernelError, ServingError
from repro.posets.builder import diamond
from repro.queries.constrained import Constraint, constrained_skyline
from repro.queries.skyband import k_skyband
from repro.queries.subspace import subspace_skyline
from repro.resilience.chaos import FaultInjector, inject_update_faults
from repro.serving import CostEstimator, QueryRequest, SkylineServer
from repro.views import (
    QueryShape,
    ResultCache,
    ViewManager,
    canonical_order,
    constraint_key,
)

ALL_ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+", "nn+", "dnc")


def _make_engine(kernel: str = "python", n: int = 120, seed: int = 23) -> SkylineEngine:
    rng = random.Random(seed)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


def _rids(points) -> list[str]:
    return sorted(str(p.record.rid) for p in points)


# ---------------------------------------------------------------------------
# Query-shape keys
# ---------------------------------------------------------------------------
class TestQueryShape:
    def test_full_skyline_is_default(self):
        assert QueryShape.full_skyline() == QueryShape()
        assert QueryShape.of() == QueryShape.full_skyline()
        assert str(QueryShape.full_skyline()) == "skyline"

    def test_subspace_attribute_order_is_canonical(self):
        assert QueryShape.for_subspace(["b", "a"]) == QueryShape.for_subspace(
            ("a", "b")
        )
        assert str(QueryShape.for_subspace(["b", "a"])) == "subspace[a,b]"

    def test_empty_subspace_rejected(self):
        with pytest.raises(ServingError):
            QueryShape.for_subspace([])

    def test_constraint_key_is_insertion_order_independent(self):
        c1 = Constraint(ranges={"a": (1, 10), "b": (None, 5)})
        c2 = Constraint(ranges={"b": (None, 5), "a": (1, 10)})
        assert constraint_key(c1) == constraint_key(c2)
        assert QueryShape.for_constraint(c1) == QueryShape.for_constraint(c2)

    def test_different_constraints_key_differently(self):
        c1 = Constraint(ranges={"a": (1, 10)})
        c2 = Constraint(ranges={"a": (1, 11)})
        assert QueryShape.for_constraint(c1) != QueryShape.for_constraint(c2)

    def test_skyband_requires_positive_k(self):
        with pytest.raises(ServingError):
            QueryShape.for_skyband(0)
        assert QueryShape.for_skyband(3).k == 3

    def test_at_most_one_shaping_field(self):
        with pytest.raises(ServingError):
            QueryShape.of(subspace=("a",), skyband_k=2)
        with pytest.raises(ServingError):
            QueryShape.of(
                constraint=Constraint(ranges={"a": (1, 2)}), skyband_k=2
            )

    def test_shapes_are_hashable_cache_keys(self):
        shapes = {
            QueryShape.full_skyline(),
            QueryShape.for_subspace(["a"]),
            QueryShape.for_skyband(2),
        }
        assert len(shapes) == 3

    def test_canonical_order_handles_mixed_rid_types(self):
        engine = _make_engine(n=10)
        points = list(engine.dataset.points)
        ordered = canonical_order(reversed(points))
        assert [p.record.rid for p in ordered] == [
            p.record.rid
            for p in sorted(
                points, key=lambda p: (str(type(p.record.rid)), str(p.record.rid))
            )
        ]


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------
class TestResultCache:
    def _points(self, engine, n):
        return list(engine.dataset.points[:n])

    def test_put_get_roundtrip_canonicalizes(self):
        engine = _make_engine(n=20)
        cache = ResultCache()
        shape = QueryShape.full_skyline()
        points = list(reversed(engine.dataset.points[:5]))
        cache.put(shape, points, dimensions=4)
        entry = cache.get(shape)
        assert entry is not None
        assert [p.record.rid for p in entry.points] == [
            p.record.rid for p in canonical_order(points)
        ]
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = ResultCache()
        assert cache.get(QueryShape.for_skyband(2)) is None
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        engine = _make_engine(n=30)
        cache = ResultCache(max_entries=2)
        s1, s2, s3 = (QueryShape.for_skyband(k) for k in (1, 2, 3))
        cache.put(s1, self._points(engine, 1), 4)
        cache.put(s2, self._points(engine, 1), 4)
        cache.get(s1)  # refresh s1 -> s2 is now LRU
        cache.put(s3, self._points(engine, 1), 4)
        assert s1 in cache and s3 in cache and s2 not in cache
        assert cache.evictions == 1

    def test_byte_budget_eviction(self):
        engine = _make_engine(n=50)
        cache = ResultCache(max_entries=100, max_bytes=3000)
        for k in range(1, 6):
            cache.put(QueryShape.for_skyband(k), self._points(engine, 10), 4)
        assert cache.bytes_resident <= 3000
        assert cache.evictions > 0
        assert len(cache) >= 1  # the budget never empties the cache

    def test_pinned_entries_survive_pressure_but_not_invalidation(self):
        engine = _make_engine(n=30)
        cache = ResultCache(max_entries=1)
        pinned = QueryShape.full_skyline()
        cache.put(pinned, self._points(engine, 2), 4, pinned=True)
        cache.put(QueryShape.for_skyband(2), self._points(engine, 2), 4)
        assert pinned in cache  # the unpinned newcomer was evicted instead
        assert cache.invalidate(pinned)
        assert pinned not in cache

    def test_invalidate_where_and_clear(self):
        engine = _make_engine(n=30)
        cache = ResultCache()
        cache.put(QueryShape.for_skyband(2), self._points(engine, 2), 4)
        cache.put(QueryShape.for_subspace(["a"]), self._points(engine, 2), 4)
        dropped = cache.invalidate_where(lambda e: e.shape.kind == "skyband")
        assert dropped == 1 and len(cache) == 1
        assert cache.clear() == 1 and len(cache) == 0
        assert cache.bytes_resident == 0

    def test_snapshot_shape(self):
        cache = ResultCache()
        snap = cache.snapshot()
        for key in ("entries", "bytes_resident", "hits", "misses", "shapes"):
            assert key in snap

    def test_budgets_must_be_positive(self):
        with pytest.raises(ServingError):
            ResultCache(max_entries=0)
        with pytest.raises(ServingError):
            ResultCache(max_bytes=0)


# ---------------------------------------------------------------------------
# View manager: maintenance parity and invalidation
# ---------------------------------------------------------------------------
class TestViewManager:
    def test_requires_base_dataset(self):
        engine = _make_engine(n=10)
        with pytest.raises(ServingError):
            ViewManager(engine.dataset.query_view())

    def test_materialize_matches_every_algorithm(self):
        engine = _make_engine(n=80)
        with engine.materialize() as views:
            hit = views.lookup(QueryShape.full_skyline())
            assert hit is not None and hit.source == "view"
            for name in ALL_ALGORITHMS:
                assert _rids(engine.run_points(name)) == _rids(hit.points)

    def test_maintenance_stays_correct_under_churn(self):
        engine = _make_engine(n=60, seed=5)
        rng = random.Random(99)
        poset = engine.dataset.schema.partial_attrs[0].poset
        with engine.materialize() as views:
            for step in range(12):
                if rng.random() < 0.5 and len(engine.dataset) > 10:
                    victim = rng.choice(engine.dataset.points).record.rid
                    engine.delete(victim)
                else:
                    engine.insert(
                        Record(
                            f"new-{step}",
                            (rng.randint(1, 40), rng.randint(1, 40)),
                            (poset.value(rng.randrange(len(poset))),),
                        )
                    )
                hit = views.lookup(QueryShape.full_skyline())
                assert _rids(hit.points) == _rids(engine.run_points("bnl"))

    def test_maintenance_billed_privately(self):
        engine = _make_engine(n=60)
        with engine.materialize() as views:
            base = engine.stats.total_dominance_checks
            engine.insert(Record("fresh", (1, 1), ("b",)))
            assert views.stats.total_dominance_checks > 0
            # the shared engine bundle saw none of the patch work
            assert engine.stats.total_dominance_checks == base

    def test_constrained_entries_invalidate_region_aware(self):
        engine = _make_engine(n=60)
        with engine.materialize() as views:
            inside = Constraint(ranges={"a": (None, 50.0)})
            outside = Constraint(ranges={"a": (1000.0, 2000.0)})
            views.store(
                QueryShape.for_constraint(inside),
                constrained_skyline(engine.dataset, inside),
                region=inside,
            )
            views.store(
                QueryShape.for_constraint(outside),
                constrained_skyline(engine.dataset, outside),
                region=outside,
            )
            engine.insert(Record("mid", (10, 10), ("b",)))  # a=10: inside only
            assert views.lookup(QueryShape.for_constraint(inside)) is None
            assert views.lookup(QueryShape.for_constraint(outside)) is not None

    def test_subspace_and_skyband_entries_always_invalidate(self):
        engine = _make_engine(n=60)
        with engine.materialize() as views:
            sub = QueryShape.for_subspace(["a", "b"])
            band = QueryShape.for_skyband(2)
            views.store(sub, engine.dataset.points[:3])
            views.store(band, engine.dataset.points[:3])
            engine.insert(Record("any", (39, 39), ("b",)))
            assert views.lookup(sub) is None
            assert views.lookup(band) is None

    def test_view_patch_failure_fails_safe(self):
        engine = _make_engine(n=40)
        views = engine.materialize()
        try:
            views.store(QueryShape.for_skyband(2), engine.dataset.points[:3])

            def broken(*_a, **_k):
                raise KernelError("chaos: maintenance kernel down")

            views.on_update = broken
            with pytest.warns(RuntimeWarning, match="patch failed"):
                engine.insert(Record("boom", (1, 1), ("b",)))
            # Fail safe, never fail stale: everything cached is gone...
            assert not views.materialized
            assert len(views.cache) == 0
            assert views.rebuilds == 1
            # ...and re-materializing recovers the correct answer.
            del views.on_update
            views.materialize()
            hit = views.lookup(QueryShape.full_skyline())
            assert _rids(hit.points) == _rids(engine.run_points("bnl"))
        finally:
            views.detach()

    def test_detach_stops_maintenance(self):
        engine = _make_engine(n=40)
        views = engine.materialize()
        views.detach()
        engine.insert(Record("after-detach", (1, 1), ("b",)))
        assert views.patches == 0

    def test_snapshot_reports_state(self):
        engine = _make_engine(n=40)
        with engine.materialize() as views:
            snap = views.snapshot()
            assert snap["materialized"] is True
            assert snap["skyline_size"] == len(
                views.lookup(QueryShape.full_skyline()).points
            )
            assert "cache" in snap


# ---------------------------------------------------------------------------
# Server integration: the O(answer) hit path
# ---------------------------------------------------------------------------
class TestServerCache:
    @pytest.mark.parametrize("kernel", ("python", "numpy"))
    def test_hit_is_bit_identical_to_cold_recompute_all_algorithms(self, kernel):
        engine = _make_engine(kernel=kernel)
        cold = {
            name: _rids(engine.run_points(name)) for name in ALL_ALGORITHMS
        }
        with SkylineServer(engine, workers=2, cache=True) as server:
            for name in ALL_ALGORITHMS:
                handle = server.submit(QueryRequest(algorithm=name))
                result = handle.result(timeout=60)
                assert result.cached and result.complete
                assert handle.stats.total_dominance_checks == 0
                assert _rids(result.points) == cold[name]
        snap = server.metrics.snapshot()["cache"]
        assert snap["hits"] == len(ALL_ALGORITHMS)

    def test_cache_defaults_off(self):
        engine = _make_engine(n=40)
        with SkylineServer(engine, workers=1) as server:
            assert server.views is None
            result = server.submit(QueryRequest()).result(timeout=60)
            assert not result.cached
            assert server.metrics.snapshot()["cache"]["hits"] == 0

    def test_shaped_queries_compute_then_hit(self):
        engine = _make_engine()
        dataset = engine.dataset
        constraint = Constraint(ranges={"a": (None, 20.0)})
        expected = {
            "constrained": _rids(constrained_skyline(dataset, constraint)),
            "subspace": sorted(
                str(r.rid) for r in subspace_skyline(dataset, ["a", "b"])
            ),
            "skyband": _rids(k_skyband(dataset, 2)),
        }
        requests = {
            "constrained": QueryRequest(
                algorithm="bbs+", constraint=constraint
            ),
            "subspace": QueryRequest(algorithm="bnl", subspace=("a", "b")),
            "skyband": QueryRequest(algorithm="bbs+", skyband_k=2),
        }
        with SkylineServer(engine, workers=2, cache=True) as server:
            for kind, request in requests.items():
                cold_handle = server.submit(request)
                cold_result = cold_handle.result(timeout=60)
                assert not cold_result.cached
                assert cold_handle.stats.total_dominance_checks > 0
                assert _rids(cold_result.points) == expected[kind]
                hot_handle = server.submit(request)
                hot_result = hot_handle.result(timeout=60)
                assert hot_result.cached
                assert hot_handle.stats.total_dominance_checks == 0
                assert _rids(hot_result.points) == expected[kind]

    def test_shaped_queries_work_without_cache(self):
        engine = _make_engine()
        constraint = Constraint(ranges={"a": (None, 20.0)})
        expected = _rids(constrained_skyline(engine.dataset, constraint))
        with SkylineServer(engine, workers=1) as server:
            result = server.submit(
                QueryRequest(constraint=constraint)
            ).result(timeout=60)
            assert _rids(result.points) == expected

    def test_conflicting_shape_fields_rejected(self):
        engine = _make_engine(n=30)
        with SkylineServer(engine, workers=1, cache=True) as server:
            with pytest.raises(ServingError):
                server.submit(
                    QueryRequest(subspace=("a",), skyband_k=2)
                )

    def test_update_patches_view_before_next_query(self):
        engine = _make_engine()
        with SkylineServer(engine, workers=2, cache=True) as server:
            first = server.submit(QueryRequest()).result(timeout=60)
            assert first.cached
            server.insert(Record("dominator", (0, 0), ("b",)))
            after = server.submit(QueryRequest())
            result = after.result(timeout=60)
            assert result.cached  # patched in place, still served O(answer)
            assert "dominator" in {p.record.rid for p in result.points}
            assert after.served_version == 1
            assert _rids(result.points) == _rids(engine.run_points("bnl"))

    def test_failed_update_does_not_invalidate_cache(self):
        engine = _make_engine()
        constraint = Constraint(ranges={"a": (None, 30.0)})
        with SkylineServer(engine, workers=2, cache=True) as server:
            server.submit(QueryRequest(constraint=constraint)).result(timeout=60)
            before = server.views.cache.snapshot()
            injector = inject_update_faults(
                engine.dataset, FaultInjector(seed=3, fail_after=1)
            )
            with pytest.raises(KernelError):
                server.insert(Record("chaos", (1, 1), ("b",)))
            assert injector.fired == 1
            after = server.views.cache.snapshot()
            assert after["shapes"] == before["shapes"]
            assert after["invalidations"] == before["invalidations"]
            # the rolled-back update never bumped the commit counter...
            assert engine.dataset.update_version == 0
            # ...and the cached constrained answer still serves as a hit
            hot = server.submit(QueryRequest(constraint=constraint))
            assert hot.result(timeout=60).cached
            assert hot.stats.total_dominance_checks == 0

    def test_metrics_cache_section(self):
        engine = _make_engine()
        with SkylineServer(engine, workers=2, cache=True) as server:
            server.submit(QueryRequest()).result(timeout=60)  # view hit
            miss = QueryRequest(skyband_k=2)
            server.submit(miss).result(timeout=60)
            server.submit(QueryRequest(skyband_k=2)).result(timeout=60)
        snap = server.metrics.snapshot()["cache"]
        assert snap["hits"] == 2 and snap["misses"] == 1
        assert snap["stores"] == 1
        assert snap["entries"] == 1 and snap["bytes_resident"] > 0
        assert snap["staleness_age"]["count"] == 2
        assert 0.0 < snap["hit_rate"] < 1.0


# ---------------------------------------------------------------------------
# Shape-conditioned admission estimates
# ---------------------------------------------------------------------------
class TestShapedAdmission:
    def test_positional_estimate_signature_unchanged(self):
        estimator = CostEstimator()
        estimate = estimator.estimate("bnl", 1000, 4)
        assert estimate.comparisons > 0 and not estimate.calibrated

    def test_subspace_estimate_shrinks_with_projection(self):
        estimator = CostEstimator()
        full = estimator.estimate("bnl", 5000, 5)
        sub = estimator.estimate(
            "bnl", 5000, 5, shape=QueryShape.for_subspace(["a", "b"])
        )
        assert sub.comparisons < full.comparisons

    def test_skyband_estimate_scales_with_k(self):
        estimator = CostEstimator()
        skyline = estimator.estimate("bbs+", 5000, 3)
        band = estimator.estimate(
            "bbs+", 5000, 3, shape=QueryShape.for_skyband(4)
        )
        assert band.comparisons == pytest.approx(skyline.comparisons * 4)

    def test_shaped_observations_calibrate_separate_profiles(self):
        estimator = CostEstimator()
        shape = QueryShape.for_constraint(Constraint(ranges={"a": (1, 2)}))
        estimator.observe(
            "bnl", 1000, {"m_dominance_point": 500}, 0.01, shape=shape
        )
        assert estimator.profile_samples("bnl", shape=shape) == 1
        assert estimator.profile_samples("bnl") == 0
        assert not estimator.estimate("bnl", 1000, 4).calibrated
        assert estimator.estimate("bnl", 1000, 4, shape=shape).calibrated

    def test_server_observes_shaped_queries_into_shaped_profile(self):
        engine = _make_engine()
        with SkylineServer(engine, workers=1) as server:
            request = QueryRequest(skyband_k=2)
            server.submit(request).result(timeout=60)
            estimator = server.admission.estimator
            assert (
                estimator.profile_samples(
                    request.algorithm, shape=request.shape()
                )
                == 1
            )


# ---------------------------------------------------------------------------
# Parallel speedup assertion gate (unit)
# ---------------------------------------------------------------------------
class TestSpeedupAssertion:
    def _curve(self, speedups: dict[int, float]) -> dict:
        return {
            str(count): {"aggregate_speedup": value}
            for count, value in speedups.items()
        }

    def test_skipped_below_core_floor(self):
        from repro.parallel.bench import speedup_assertion

        result = speedup_assertion(self._curve({1: 0.4, 4: 0.5}), cpu_count=1)
        assert result["evaluated"] is False and result["passed"] is None

    def test_passes_with_real_speedup(self):
        from repro.parallel.bench import speedup_assertion

        result = speedup_assertion(
            self._curve({1: 1.0, 2: 1.4, 4: 2.1}), cpu_count=8
        )
        assert result["evaluated"] and result["passed"]
        assert result["best_workers"] == 4

    def test_fails_on_slowdown_with_enough_cores(self):
        from repro.parallel.bench import speedup_assertion

        result = speedup_assertion(
            self._curve({1: 1.0, 2: 0.6, 4: 0.7}), cpu_count=8
        )
        assert result["evaluated"] and result["passed"] is False

    def test_single_worker_curve_never_evaluates(self):
        from repro.parallel.bench import speedup_assertion

        result = speedup_assertion(self._curve({1: 1.0}), cpu_count=16)
        assert result["evaluated"] is False


# ---------------------------------------------------------------------------
# serve-bench repeat-fraction knob
# ---------------------------------------------------------------------------
class TestServeBenchRepeatFraction:
    def test_invalid_fraction_rejected(self):
        from repro.serving.bench import run_serve_bench

        with pytest.raises(ValueError):
            run_serve_bench(size=20, repeat_fraction=1.5)

    def test_cached_repeat_workload_reports_hits(self):
        from repro.serving.bench import run_serve_bench

        report = run_serve_bench(
            size=60,
            clients=2,
            queries_per_client=6,
            workers=2,
            repeat_fraction=0.8,
            cache=True,
            seed=11,
        )
        assert report["workload"]["repeat_fraction"] == 0.8
        assert report["workload"]["cache"] is True
        assert not report["errors"]
        assert report["server"]["cache"]["hits"] > 0
