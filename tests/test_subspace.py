"""Tests for subspace skylines and the skycube."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline, random_mixed_dataset
from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.exceptions import SchemaError
from repro.posets.builder import diamond
from repro.queries.subspace import project_dataset, skycube, subspace_skyline
from repro.transform.dataset import TransformedDataset


def make_dataset(seed=0, n=40):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=n, num_total=2, num_partial=1)
    return schema, records, TransformedDataset(schema, records)


def brute_subspace(schema, records, names):
    wanted = set(names)
    total_idx = [k for k, a in enumerate(schema.total_attrs) if a.name in wanted]
    partial_idx = [k for k, a in enumerate(schema.partial_attrs) if a.name in wanted]
    projected_schema = Schema([a for a in schema.attributes if a.name in wanted])
    projected = [
        Record(
            r.rid,
            tuple(r.totals[k] for k in total_idx),
            tuple(r.partials[k] for k in partial_idx),
        )
        for r in records
    ]
    return brute_force_skyline(projected_schema, projected)


class TestProjection:
    def test_projected_schema_shape(self):
        _, _, d = make_dataset()
        projected = project_dataset(d, ["t0", "p0"])
        assert projected.schema.num_total == 1
        assert projected.schema.num_partial == 1
        assert len(projected) == len(d)

    def test_attribute_order_preserved(self):
        _, _, d = make_dataset()
        projected = project_dataset(d, ["p0", "t1"])  # order given differs
        assert [a.name for a in projected.schema.attributes] == ["t1", "p0"]

    def test_unknown_attribute(self):
        _, _, d = make_dataset()
        with pytest.raises(SchemaError):
            project_dataset(d, ["bogus"])

    def test_empty_subspace(self):
        _, _, d = make_dataset()
        with pytest.raises(SchemaError):
            project_dataset(d, [])

    def test_payload_preserved(self):
        schema = Schema([NumericAttribute("x"), NumericAttribute("y")])
        records = [Record(0, (1, 2), payload="keep me")]
        d = TransformedDataset(schema, records)
        projected = project_dataset(d, ["x"])
        assert projected.records[0].payload == "keep me"


class TestSubspaceSkyline:
    @pytest.mark.parametrize(
        "names", [["t0"], ["t1"], ["p0"], ["t0", "t1"], ["t0", "p0"], ["t0", "t1", "p0"]]
    )
    def test_matches_brute_force(self, names):
        schema, records, d = make_dataset(seed=3)
        got = sorted(r.rid for r in subspace_skyline(d, names))
        assert got == brute_subspace(schema, records, names)

    def test_returns_original_records(self):
        schema, records, d = make_dataset(seed=4)
        for r in subspace_skyline(d, ["t0"]):
            assert r in records  # full records, not projections
            assert len(r.totals) == 2

    def test_full_subspace_is_plain_skyline(self):
        schema, records, d = make_dataset(seed=5)
        names = [a.name for a in schema.attributes]
        got = sorted(r.rid for r in subspace_skyline(d, names))
        assert got == brute_force_skyline(schema, records)

    def test_index_algorithm_in_subspace(self):
        schema, records, d = make_dataset(seed=6)
        a = sorted(r.rid for r in subspace_skyline(d, ["t0", "p0"], "bbs+"))
        b = sorted(r.rid for r in subspace_skyline(d, ["t0", "p0"], "bnl"))
        assert a == b

    def test_single_numeric_subspace_minimum(self):
        schema = Schema([NumericAttribute("x"), NumericAttribute("y")])
        records = [Record(i, (v, 10 - v)) for i, v in enumerate([3, 1, 4, 1, 5])]
        d = TransformedDataset(schema, records)
        got = sorted(r.rid for r in subspace_skyline(d, ["x"]))
        assert got == [1, 3]  # both records with the minimum x


class TestSkycube:
    def test_all_subsets_present(self):
        schema, _, d = make_dataset(seed=7, n=20)
        cube = skycube(d)
        assert len(cube) == 2 ** len(schema.attributes) - 1

    def test_cube_entries_match_subspace_queries(self):
        schema, records, d = make_dataset(seed=8, n=25)
        cube = skycube(d)
        for subset, rids in cube.items():
            expected = brute_subspace(schema, records, list(subset))
            assert sorted(rids) == expected

    def test_width_guard(self):
        schema = Schema([NumericAttribute(f"x{i}") for i in range(7)])
        d = TransformedDataset(schema, [])
        with pytest.raises(SchemaError):
            skycube(d)
        assert skycube(d, max_attributes=7) is not None

    def test_subspace_skylines_cover_full_skyline(self):
        """Every full-space skyline record appears in at least one
        single-attribute... not guaranteed in general; instead check the
        standard containment: the full-space skyline is a subset of the
        union of all subspace skylines."""
        schema, records, d = make_dataset(seed=9, n=30)
        cube = skycube(d)
        union = set()
        for rids in cube.values():
            union |= set(rids)
        full = set(brute_force_skyline(schema, records))
        assert full <= union


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_subspace_property(seed):
    schema, records, dataset = make_dataset(seed=seed, n=30)
    names = [a.name for a in schema.attributes]
    rng = random.Random(seed)
    size = rng.randint(1, len(names))
    subset = rng.sample(names, size)
    got = sorted(r.rid for r in subspace_skyline(dataset, subset))
    assert got == brute_subspace(schema, records, subset)
