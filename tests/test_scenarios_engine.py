"""Tests for scenario builders, engine introspection and public
hypothesis strategies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from conftest import brute_force_skyline
from repro.engine import SkylineEngine
from repro.exceptions import WorkloadError
from repro.reference import reference_skyline
from repro.strategies import datasets, posets, records_for, schemas
from repro.workloads.scenarios import (
    ORG_REPORTING,
    hotel_catalogue,
    org_chart,
    product_catalogue,
)


class TestScenarios:
    def test_hotel_catalogue_shape(self):
        schema, records = hotel_catalogue(100)
        assert len(records) == 100
        assert schema.num_total == 2 and schema.num_partial == 1
        assert schema.attribute("amenities").set_domain is not None

    def test_org_chart_shape(self):
        schema, records = org_chart(50)
        assert len(records) == 50
        assert schema.attribute("rank").set_domain is None  # reachability mode
        roles = {r for edge in ORG_REPORTING for r in edge}
        assert all(r.partials[0] in roles for r in records)

    def test_product_catalogue_shape(self):
        schema, records = product_catalogue(30)
        assert len(records) == 30
        assert schema.num_total == 2

    def test_deterministic(self):
        assert hotel_catalogue(20)[1] == hotel_catalogue(20)[1]
        assert org_chart(20)[1] == org_chart(20)[1]

    @pytest.mark.parametrize("builder", [hotel_catalogue, org_chart, product_catalogue])
    def test_skyline_queryable(self, builder):
        schema, records = builder(120)
        engine = SkylineEngine(schema, records)
        answers = engine.skyline("sdc+")
        assert sorted(r.rid for r in answers) == brute_force_skyline(schema, records)

    @pytest.mark.parametrize("builder", [hotel_catalogue, org_chart, product_catalogue])
    def test_negative_count_rejected(self, builder):
        with pytest.raises(WorkloadError):
            builder(-1)

    def test_empty_scenarios(self):
        for builder in (hotel_catalogue, org_chart, product_catalogue):
            _, records = builder(0)
            assert records == []


class TestIntrospection:
    def test_describe(self):
        schema, records = hotel_catalogue(150)
        engine = SkylineEngine(schema, records, strategy="minpc")
        info = engine.describe()
        assert info["records"] == 150
        assert info["schema"]["transformed_dimensions"] == 4
        assert info["strategy"] == "minpc"
        assert sum(info["categories"].values()) == 150
        assert info["strata"] >= 1
        attr = info["poset_attributes"][0]
        assert attr["name"] == "amenities"
        assert attr["domain_size"] == 120
        assert 0.0 <= attr["comparability_ratio"] <= 1.0
        assert attr["width"] >= 1

    def test_explain(self):
        schema, records = hotel_catalogue(150)
        engine = SkylineEngine(schema, records)
        report = engine.explain("sdc+")
        assert report["algorithm"] == "sdc+"
        assert report["answers"] > 0
        assert report["first_answer_checks"] is not None
        assert report["counters"]["m_dominance_point"] > 0
        assert 0.0 <= report["progressiveness"] <= 1.0

    def test_explain_blocking_algorithm(self):
        schema, records = hotel_catalogue(120)
        engine = SkylineEngine(schema, records)
        blocking = engine.explain("bbs+")
        streaming = engine.explain("sdc+")
        assert streaming["progressiveness"] < blocking["progressiveness"]

    def test_explain_empty_dataset(self):
        schema, _ = hotel_catalogue(1)
        engine = SkylineEngine(schema, [])
        report = engine.explain("sdc+")
        assert report["answers"] == 0
        assert report["first_answer_seconds"] is None


class TestPublicStrategies:
    @settings(max_examples=25, deadline=None)
    @given(posets())
    def test_posets_valid(self, poset):
        assert len(poset) >= 1
        assert poset.is_hasse()

    @settings(max_examples=25, deadline=None)
    @given(schemas())
    def test_schemas_valid(self, schema):
        assert len(schema) >= 1

    @settings(max_examples=20, deadline=None)
    @given(datasets(max_records=25))
    def test_datasets_queryable(self, data):
        schema, records = data
        engine = SkylineEngine(schema, records)
        got = sorted(r.rid for r in engine.skyline("sdc+"))
        assert got == sorted(r.rid for r in reference_skyline(schema, records))

    @settings(max_examples=15, deadline=None)
    @given(data=__import__("hypothesis").strategies.data())
    def test_records_for_respects_schema(self, data):
        schema = data.draw(schemas(set_valued=True))
        records = data.draw(records_for(schema, max_records=8))
        for r in records:
            schema.validate_record(r.totals, r.partials)
