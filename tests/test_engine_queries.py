"""Tests for the engine's query convenience front-ends."""

from __future__ import annotations

import random

import pytest

from conftest import brute_force_skyline, random_mixed_dataset
from repro.engine import SkylineEngine
from repro.queries.constrained import Constraint
from repro.reference import reference_skyband


@pytest.fixture(scope="module")
def engine_and_data():
    rng = random.Random(17)
    schema, records = random_mixed_dataset(rng, n=70, num_total=2)
    return SkylineEngine(schema, records), schema, records


class TestEngineQueryFrontends:
    def test_skyband(self, engine_and_data):
        engine, schema, records = engine_and_data
        got = sorted(r.rid for r in engine.skyband(3))
        expected = sorted(r.rid for r in reference_skyband(schema, records, 3))
        assert got == expected

    def test_skyband_one_is_skyline(self, engine_and_data):
        engine, schema, records = engine_and_data
        assert sorted(r.rid for r in engine.skyband(1)) == brute_force_skyline(
            schema, records
        )

    def test_constrained(self, engine_and_data):
        engine, schema, records = engine_and_data
        constraint = Constraint(ranges={"t0": (2, 8)})
        got = sorted(r.rid for r in engine.constrained(constraint))
        expected = brute_force_skyline(
            schema, [r for r in records if 2 <= r.totals[0] <= 8]
        )
        assert got == expected

    def test_layers_partition(self, engine_and_data):
        engine, schema, records = engine_and_data
        seen = []
        for layer in engine.layers():
            seen.extend(r.rid for r in layer)
        assert sorted(seen) == sorted(r.rid for r in records)

    def test_layers_limit(self, engine_and_data):
        engine, _, _ = engine_and_data
        assert len(list(engine.layers(max_layers=2))) == 2

    def test_subspace(self, engine_and_data):
        engine, schema, records = engine_and_data
        got = sorted(r.rid for r in engine.subspace(["t0"]))
        minimum = min(r.totals[0] for r in records)
        expected = sorted(r.rid for r in records if r.totals[0] == minimum)
        assert got == expected

    def test_top_k_dominating(self, engine_and_data):
        engine, schema, records = engine_and_data
        top = engine.top_k_dominating(3)
        assert len(top) == 3
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)
        # Spot-check the champion's count against brute force.
        from repro.reference import reference_dominates

        champion, count = top[0]
        actual = sum(
            1
            for other in records
            if other is not champion and reference_dominates(schema, champion, other)
        )
        assert count == actual

    def test_frontends_return_records_not_points(self, engine_and_data):
        engine, _, records = engine_and_data
        sample = engine.skyband(2)[0]
        assert sample in records
