"""Tests for JSON persistence (:mod:`repro.io`)."""

from __future__ import annotations

import json
import random

import pytest

from conftest import brute_force_skyline, random_mixed_dataset
from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.engine import skyline
from repro.exceptions import InputFormatError, ReproError
from repro.io import (
    load_workload,
    poset_from_dict,
    poset_to_dict,
    records_from_list,
    records_to_list,
    save_workload,
    schema_from_dict,
    schema_to_dict,
)
from repro.posets.builder import diamond
from repro.posets.generator import generate_poset
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload


class TestPosetRoundtrip:
    def test_diamond(self):
        p = diamond()
        assert poset_from_dict(poset_to_dict(p)) == p

    def test_generated(self):
        p = generate_poset(num_nodes=80, height=4, num_trees=2, seed=1)
        restored = poset_from_dict(poset_to_dict(p))
        assert restored == p

    def test_json_safe(self):
        text = json.dumps(poset_to_dict(diamond()))
        assert poset_from_dict(json.loads(text)) == diamond()

    def test_unserialisable_values_rejected(self):
        from repro.posets.poset import Poset

        p = Poset([frozenset({1})], [])
        with pytest.raises(ReproError):
            poset_to_dict(p)


class TestSchemaRoundtrip:
    def make(self):
        return Schema(
            [
                NumericAttribute("price", "min"),
                NumericAttribute("rating", "max"),
                PosetAttribute.set_valued("tier", diamond()),
            ]
        )

    def test_roundtrip_structure(self):
        schema = self.make()
        restored = schema_from_dict(json.loads(json.dumps(schema_to_dict(schema))))
        assert restored.num_total == 2
        assert restored.num_partial == 1
        assert restored.attribute("rating").direction == "max"
        assert restored.attribute("tier").poset == diamond()

    def test_set_domain_preserved(self):
        schema = self.make()
        restored = schema_from_dict(schema_to_dict(schema))
        original = schema.attribute("tier").set_domain
        recovered = restored.attribute("tier").set_domain
        for value in "abcd":
            assert recovered.set_of(value) == original.set_of(value)

    def test_reachability_mode_schema(self):
        schema = Schema([PosetAttribute("p", diamond())])
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.attribute("p").set_domain is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            schema_from_dict({"attributes": [{"kind": "holographic"}]})


class TestRecordsRoundtrip:
    def test_roundtrip(self):
        records = [Record(1, (10, 20), ("a",)), Record("x", (1, 2), ("d",))]
        restored = records_from_list(records_to_list(records))
        assert restored == records

    def test_payload_not_persisted(self):
        records = [Record(1, (1,), (), payload=object())]
        restored = records_from_list(records_to_list(records))
        assert restored[0].payload is None


class TestWorkloadFiles:
    def test_save_load_and_requery(self, tmp_path):
        rng = random.Random(3)
        schema, records = random_mixed_dataset(rng, n=40)
        path = tmp_path / "wl.json"
        save_workload(path, schema, records)
        schema2, records2 = load_workload(path)
        expected = brute_force_skyline(schema, records)
        got = sorted(r.rid for r in skyline(records2, schema2, algorithm="sdc+"))
        assert got == expected

    def test_generated_workload_roundtrip(self, tmp_path):
        from dataclasses import replace
        from repro.posets.generator import PosetGeneratorConfig

        config = WorkloadConfig.default(
            data_size=60, poset=PosetGeneratorConfig(num_nodes=30, height=3, num_trees=2)
        )
        workload = generate_workload(config)
        path = tmp_path / "generated.json"
        save_workload(path, workload.schema, workload.records)
        schema2, records2 = load_workload(path)
        assert len(records2) == 60
        a = sorted(r.rid for r in skyline(workload.records, workload.schema))
        b = sorted(r.rid for r in skyline(records2, schema2))
        assert a == b

    def test_load_rejects_other_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ReproError):
            load_workload(path)


class TestInputHardening:
    """Typed errors for malformed or non-finite input (robustness PR)."""

    def test_nan_total_rejected_on_save(self, tmp_path):
        schema = Schema([NumericAttribute("a", "min")])
        records = [Record(0, (float("nan"),), ())]
        with pytest.raises(InputFormatError, match="not finite"):
            save_workload(tmp_path / "bad.json", schema, records)

    def test_inf_total_rejected_on_load(self):
        with pytest.raises(InputFormatError, match="not finite"):
            records_from_list(
                [{"rid": 0, "totals": [float("inf")], "partials": []}]
            )

    def test_non_numeric_total_rejected(self):
        with pytest.raises(InputFormatError, match="not numeric"):
            records_from_list([{"rid": 0, "totals": ["ten"], "partials": []}])

    def test_nan_poset_value_rejected(self):
        from repro.posets.poset import Poset

        nan = float("nan")
        with pytest.raises(InputFormatError, match="not finite"):
            poset_to_dict(Poset([nan, 1.0], []))

    def test_poset_from_dict_missing_key(self):
        with pytest.raises(InputFormatError, match="edges"):
            poset_from_dict({"values": ["a", "b"]})

    def test_schema_from_dict_missing_key(self):
        with pytest.raises(InputFormatError) as info:
            schema_from_dict({"attributes": [{"kind": "numeric", "name": "a"}]})
        assert info.value.key == "direction"

    def test_records_from_list_missing_key(self):
        with pytest.raises(InputFormatError) as info:
            records_from_list([{"rid": 0, "totals": [1.0]}])
        assert info.value.key == "partials"

    def test_schema_from_dict_wrong_shape(self):
        with pytest.raises(InputFormatError):
            schema_from_dict({"attributes": [42]})

    def test_typed_errors_are_repro_errors(self):
        assert issubclass(InputFormatError, ReproError)
