"""End-to-end integration sweep: the whole Table-1 grid, every algorithm.

Scaled-down versions of all seven experimental parameter variations are
generated, evaluated by every registered POS algorithm under both native
comparison backends, and checked against the definition-level brute
force.  This is the closest single test to "the paper's entire study is
internally consistent".
"""

from __future__ import annotations

import pytest

from conftest import brute_force_skyline
from repro.algorithms.base import get_algorithm
from repro.bench.harness import count_false_positives
from repro.posets.generator import PosetGeneratorConfig
from repro.transform.dataset import TransformedDataset
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

ALGORITHMS = ("bnl", "bnl+", "sfs", "dnc", "nn+", "bbs+", "sdc", "sdc+")

SMALL_POSET = PosetGeneratorConfig(num_nodes=36, height=4, num_trees=2, seed=13)
TALL_POSET = PosetGeneratorConfig(
    num_nodes=40, height=8, num_trees=2, edge_probability=0.15, seed=13
)

GRID = {
    "default": WorkloadConfig.default(data_size=160, poset=SMALL_POSET),
    "one-numeric": WorkloadConfig.default(
        num_total=1, data_size=160, poset=SMALL_POSET
    ),
    "four-numeric": WorkloadConfig.more_numeric(data_size=160, poset=SMALL_POSET),
    "two-partial": WorkloadConfig.more_set_valued(data_size=160, poset=SMALL_POSET),
    "anti-correlated": WorkloadConfig.anti_correlated(
        data_size=160, poset=SMALL_POSET
    ),
    "bigger-poset": WorkloadConfig.default(
        data_size=160,
        poset=PosetGeneratorConfig(num_nodes=80, height=4, num_trees=3, seed=13),
    ),
    "tall-poset": WorkloadConfig.default(data_size=160, poset=TALL_POSET),
}


@pytest.fixture(scope="module")
def grid_data():
    out = {}
    for name, config in GRID.items():
        workload = generate_workload(config)
        truth = brute_force_skyline(workload.schema, workload.records)
        out[name] = (workload, truth)
    return out


@pytest.mark.parametrize("variation", sorted(GRID))
@pytest.mark.parametrize("native_mode", ["native", "closure"])
def test_grid_point_all_algorithms(grid_data, variation, native_mode):
    workload, truth = grid_data[variation]
    dataset = TransformedDataset(
        workload.schema, workload.records, native_mode=native_mode
    )
    for name in ALGORITHMS:
        got = sorted(p.record.rid for p in get_algorithm(name).run(dataset))
        assert got == truth, f"{name} on {variation} ({native_mode})"


@pytest.mark.parametrize("variation", sorted(GRID))
def test_grid_point_strategies(grid_data, variation):
    workload, truth = grid_data[variation]
    for strategy in ("minpc", "maxpc"):
        dataset = TransformedDataset(
            workload.schema, workload.records, strategy=strategy
        )
        for name in ("bbs+", "sdc", "sdc+"):
            got = sorted(p.record.rid for p in get_algorithm(name).run(dataset))
            assert got == truth, f"{name} on {variation} ({strategy})"


@pytest.mark.parametrize("variation", sorted(GRID))
def test_false_positive_accounting(grid_data, variation):
    workload, truth = grid_data[variation]
    dataset = TransformedDataset(workload.schema, workload.records)
    skyline_size, false_positives = count_false_positives(dataset)
    assert skyline_size == len(truth)
    assert false_positives >= 0
