"""Behavioural tests for SDC+ (Section 4.6), incl. the paper-deviation
regression documented in DESIGN.md."""

from __future__ import annotations

import random

from conftest import brute_force_skyline, random_mixed_dataset
from repro.algorithms.base import get_algorithm
from repro.core.record import Record
from repro.core.schema import PosetAttribute, Schema
from repro.transform.dataset import TransformedDataset
from test_dominance import counterexample_poset


class TestProgressiveness:
    def test_emission_follows_stratum_order(self, small_dataset):
        """Answers arrive grouped by stratum: (c,p), (c,c), then partially
        covered strata by ascending uncovered level."""
        emitted = list(get_algorithm("sdc+").run(small_dataset))
        order = []
        for p in emitted:
            level = 0 if p.category.completely_covered else p.level
            covering_rank = 0 if p.category.completely_covering else 1
            if p.category.completely_covered:
                # (c,p) precedes (c,c)
                order.append((0, 0, 1 - covering_rank))
            else:
                order.append((1, level, 1 - covering_rank))
        assert order == sorted(order)

    def test_every_emission_definite(self):
        rng = random.Random(9)
        schema, records = random_mixed_dataset(rng, n=90, num_partial=2)
        d = TransformedDataset(schema, records)
        truth = set(brute_force_skyline(schema, records))
        seen = set()
        for p in get_algorithm("sdc+").run(d):
            assert p.record.rid in truth
            assert p.record.rid not in seen
            seen.add(p.record.rid)
        assert seen == truth

    def test_more_progressive_than_sdc(self, small_dataset):
        """SDC+ should emit at least as many answers as SDC before its
        first partially covered emission (the paper's headline claim,
        asserted via emission-fraction of covered answers up front)."""
        sdc_plus = list(get_algorithm("sdc+").run(small_dataset))
        covered_prefix_plus = 0
        for p in sdc_plus:
            if not p.category.completely_covered:
                break
            covered_prefix_plus += 1
        total_covered = sum(
            1 for p in sdc_plus if p.category.completely_covered
        )
        # All covered answers come first in SDC+ by construction.
        assert covered_prefix_plus == total_covered


class TestFaithfulExclusionRegression:
    def make_dataset(self, **kwargs) -> TransformedDataset:
        poset = counterexample_poset()
        schema = Schema([PosetAttribute.set_valued("p", poset)])
        # Only the two (p,p) records: 'a' at level 1 dominates 'b' at
        # level 2 natively but not in the transformed space.
        records = [Record("a", (), ("a",)), Record("b", (), ("b",))]
        return TransformedDataset(schema, records, **kwargs)

    def test_corrected_mode_is_exact(self):
        d = self.make_dataset()
        got = sorted(p.record.rid for p in get_algorithm("sdc+").run(d))
        assert got == ["a"]

    def test_paper_literal_mode_emits_false_positive(self):
        """Fig. 7 step 8 excludes the same-category subset of S; the
        level-2 point 'b' is then never compared against the level-1
        dominator 'a' and escapes as a false positive."""
        d = self.make_dataset()
        algo = get_algorithm("sdc+", faithful_category_exclusion=True)
        got = sorted(p.record.rid for p in algo.run(d))
        assert got == ["a", "b"]

    def test_other_algorithms_unaffected(self):
        d = self.make_dataset()
        for name in ("bnl", "bnl+", "bbs+", "sdc"):
            got = sorted(p.record.rid for p in get_algorithm(name).run(d))
            assert got == ["a"], name


class TestStrata:
    def test_strata_trees_built_lazily_and_cached(self, small_dataset):
        strat = small_dataset.stratification
        trees = [s.tree for s in strat]
        assert [s.tree for s in strat] == trees

    def test_num_strata_grows_with_height(self):
        """Fig. 11(b): a 13-level poset yielded 25 strata in the paper;
        taller posets must produce more strata than flat ones."""
        from dataclasses import replace

        from repro.workloads.config import WorkloadConfig
        from repro.workloads.generator import generate_workload

        flat_cfg = WorkloadConfig.default(data_size=400)
        tall_cfg = replace(flat_cfg, poset=replace(flat_cfg.poset, height=13))
        flat = generate_workload(flat_cfg)
        tall = generate_workload(tall_cfg)
        d_flat = TransformedDataset(flat.schema, flat.records)
        d_tall = TransformedDataset(tall.schema, tall.records)
        assert (
            d_tall.stratification.num_strata >= d_flat.stratification.num_strata
        )
