"""Tests for the synthetic poset generator (Section 5 data sets)."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.posets.generator import (
    PosetGeneratorConfig,
    default_poset_config,
    generate_poset,
    large_poset_config,
    tall_poset_config,
)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = default_poset_config()
        assert cfg.num_nodes == 450
        assert cfg.height == 6

    def test_large_matches_paper(self):
        assert large_poset_config().num_nodes == 1000

    def test_tall_matches_paper(self):
        assert tall_poset_config().height == 13

    def test_overrides(self):
        cfg = default_poset_config(num_nodes=99, seed=5)
        assert cfg.num_nodes == 99 and cfg.seed == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"height": 0},
            {"num_trees": 0},
            {"num_nodes": 5, "num_trees": 2, "height": 6},
            {"max_branching": 0},
            {"edge_probability": 1.5},
            {"edge_probability": -0.1},
            {"edge_iterations": -1},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(WorkloadError):
            PosetGeneratorConfig(**kwargs).validate()


class TestGeneratedStructure:
    def test_node_count_exact(self):
        p = generate_poset(num_nodes=137, height=4, num_trees=3)
        assert len(p) == 137

    def test_height_exact(self):
        for h in (1, 2, 6, 13):
            p = generate_poset(
                num_nodes=max(60, 5 * h), height=h, num_trees=3, max_branching=64
            )
            assert p.height == h

    def test_default_poset(self):
        p = generate_poset()
        assert len(p) == 450
        assert p.height == 6
        assert p.is_connected()

    def test_hasse_property(self):
        """Adjacent-level edges can never be transitively redundant."""
        p = generate_poset(num_nodes=200, height=5, num_trees=4, seed=2)
        assert p.is_hasse()

    def test_edges_respect_levels(self):
        p = generate_poset(num_nodes=150, height=5, num_trees=3, seed=8)
        levels = p.levels
        for v, w in p.edges():
            assert levels[p.index(w)] == levels[p.index(v)] + 1

    def test_deterministic(self):
        a = generate_poset(num_nodes=100, height=4, num_trees=2, seed=77)
        b = generate_poset(num_nodes=100, height=4, num_trees=2, seed=77)
        assert a == b

    def test_seed_changes_structure(self):
        a = generate_poset(num_nodes=100, height=4, num_trees=2, seed=1)
        b = generate_poset(num_nodes=100, height=4, num_trees=2, seed=2)
        assert a != b

    def test_density_grows_with_probability(self):
        sparse = generate_poset(
            num_nodes=200, height=5, num_trees=4, edge_probability=0.05, seed=3
        )
        dense = generate_poset(
            num_nodes=200, height=5, num_trees=4, edge_probability=0.8, seed=3
        )
        assert dense.num_edges > sparse.num_edges

    def test_density_grows_with_iterations(self):
        one = generate_poset(
            num_nodes=200, height=5, num_trees=4, edge_iterations=1, seed=3
        )
        many = generate_poset(
            num_nodes=200, height=5, num_trees=4, edge_iterations=6, seed=3
        )
        assert many.num_edges > one.num_edges

    def test_no_inter_tree_edges_gives_forest(self):
        p = generate_poset(
            num_nodes=80,
            height=4,
            num_trees=4,
            edge_iterations=0,
            connect=False,
            seed=6,
        )
        assert p.is_tree()
        assert len(p.maximal_ix) == 4

    def test_connect_flag(self):
        connected = generate_poset(
            num_nodes=120, height=4, num_trees=4, edge_probability=0.02, seed=5
        )
        assert connected.is_connected()

    def test_branching_cap_respected_in_trees(self):
        p = generate_poset(
            num_nodes=120,
            height=4,
            num_trees=3,
            max_branching=3,
            edge_iterations=0,
            connect=False,
            seed=4,
        )
        for i in range(len(p)):
            assert len(p.children_ix(i)) <= 3

    def test_saturated_branching_raises(self):
        # 2 trees * height 2 spines = 4 nodes; max_branching 1 saturates
        # the spine, leaving nowhere to attach the rest.
        with pytest.raises(WorkloadError):
            generate_poset(
                num_nodes=40, height=2, num_trees=2, max_branching=1, seed=1
            )
