"""Tests for schemas and records (:mod:`repro.core.schema`, ``record``)."""

from __future__ import annotations

import pytest

from repro.core.record import Record
from repro.core.schema import AttributeKind, NumericAttribute, PosetAttribute, Schema
from repro.exceptions import SchemaError
from repro.posets.builder import chain, diamond
from repro.posets.setvalued import SetValuedDomain


class TestNumericAttribute:
    def test_min_direction(self):
        a = NumericAttribute("price", "min")
        assert a.sign == 1
        assert a.normalize(5) == 5

    def test_max_direction(self):
        a = NumericAttribute("rating", "max")
        assert a.sign == -1
        assert a.normalize(5) == -5

    def test_default_is_min(self):
        assert NumericAttribute("x").direction == "min"

    def test_bad_direction(self):
        with pytest.raises(SchemaError):
            NumericAttribute("x", "upwards")

    def test_kind(self):
        assert NumericAttribute("x").kind is AttributeKind.TOTAL


class TestPosetAttribute:
    def test_plain(self):
        a = PosetAttribute("tier", diamond())
        assert a.set_domain is None
        assert a.kind is AttributeKind.PARTIAL

    def test_set_valued_factory(self):
        a = PosetAttribute.set_valued("tier", diamond())
        assert a.set_domain is not None
        assert a.set_domain.poset is a.poset

    def test_foreign_set_domain_rejected(self):
        dom = SetValuedDomain.from_poset(chain("ab"))
        with pytest.raises(SchemaError):
            PosetAttribute("tier", diamond(), dom)


class TestSchema:
    def make(self):
        return Schema(
            [
                NumericAttribute("price", "min"),
                NumericAttribute("rating", "max"),
                PosetAttribute.set_valued("tier", diamond()),
            ]
        )

    def test_partitions(self):
        s = self.make()
        assert s.num_total == 2
        assert s.num_partial == 1
        assert len(s) == 3

    def test_transformed_dimensions(self):
        assert self.make().transformed_dimensions == 4

    def test_is_totally_ordered(self):
        assert Schema([NumericAttribute("x")]).is_totally_ordered
        assert not self.make().is_totally_ordered

    def test_attribute_lookup(self):
        s = self.make()
        assert s.attribute("tier").name == "tier"
        with pytest.raises(SchemaError):
            s.attribute("missing")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([NumericAttribute("x"), NumericAttribute("x")])

    def test_validate_record_ok(self):
        self.make().validate_record((10, 4), ("a",))

    def test_validate_record_wrong_total_count(self):
        with pytest.raises(SchemaError):
            self.make().validate_record((10,), ("a",))

    def test_validate_record_wrong_partial_count(self):
        with pytest.raises(SchemaError):
            self.make().validate_record((10, 4), ())

    def test_validate_record_unknown_value(self):
        with pytest.raises(SchemaError):
            self.make().validate_record((10, 4), ("zz",))


class TestRecord:
    def test_fields(self):
        r = Record(7, (1, 2), ("a",), payload={"note": "hi"})
        assert r.rid == 7
        assert r.totals == (1, 2)
        assert r.partials == ("a",)
        assert r.payload == {"note": "hi"}

    def test_tuples_coerced(self):
        r = Record(0, [1, 2], ["a"])
        assert isinstance(r.totals, tuple) and isinstance(r.partials, tuple)

    def test_equality_ignores_payload(self):
        assert Record(1, (1,), ("a",), payload="x") == Record(1, (1,), ("a",))
        assert Record(1, (1,)) != Record(2, (1,))
        assert Record(1, (1,)) != "record"

    def test_hashable(self):
        assert len({Record(1, (1,)), Record(1, (1,))}) == 1

    def test_repr(self):
        assert "Record" in repr(Record(1, (1,), ("a",)))
