"""Randomized parity suite: ``kernel="numpy"`` vs ``kernel="python"``.

The vectorized :class:`~repro.core.batch.BatchDominanceKernel` promises
*bit-identical observable behaviour*: every algorithm must produce the
same answer set, in the same emission order, with the same
:class:`~repro.core.stats.ComparisonStats` counter bundle, on every
workload.  This module checks that promise on a few dozen seeded random
workloads spanning the kernel's native-comparison modes (set
containment, poset reachability, compressed transitive closure), its
memo fallbacks (packed bitsets, LRU pair-cache), schema shapes
(totally-ordered only, multiple posets), the Lemma-4.2 gate variants,
the SDC ablation switches and multi-pass BNL windows.
"""

from __future__ import annotations

import random

import pytest

from conftest import random_mixed_dataset
from repro.bench.harness import run_progressive
from repro.core.record import Record
from repro.core.schema import NumericAttribute, Schema
from repro.posets.generator import PosetGeneratorConfig
from repro.transform.dataset import TransformedDataset
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+")


def run_one(dataset: TransformedDataset, algorithm: str, **options):
    """``(rid sequence, counter delta)`` of one instrumented run."""
    run = run_progressive(dataset, algorithm, **options)
    return [p.record.rid for p in run.points], run.final_delta


def assert_backend_parity(
    schema,
    records,
    algorithms=ALGORITHMS,
    options=None,
    tweak=None,
    **dataset_kwargs,
):
    """Both backends must agree on answers, order and counters.

    ``tweak`` (optional) mutates the numpy dataset before it runs --
    used to force the kernel's fallback paths.
    """
    results = {}
    for kernel in ("python", "numpy"):
        dataset = TransformedDataset(
            schema, records, kernel=kernel, **dataset_kwargs
        )
        if kernel == "numpy" and tweak is not None:
            tweak(dataset)
        results[kernel] = {
            name: run_one(dataset, name, **(options or {}))
            for name in algorithms
        }
    for name in algorithms:
        py_rids, py_stats = results["python"][name]
        np_rids, np_stats = results["numpy"][name]
        assert np_rids == py_rids, f"{name}: answer sequences diverge"
        assert np_stats == py_stats, f"{name}: counters diverge"
    return results


# ---------------------------------------------------------------------------
# Seeded random workloads across the three native-comparison modes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_parity_set_valued(seed):
    """Set-containment mode (the paper's default workloads)."""
    rng = random.Random(1000 + seed)
    schema, records = random_mixed_dataset(
        rng,
        n=60 + 15 * seed,
        num_total=1 + seed % 3,
        num_partial=1 + seed % 2,
        set_valued=True,
    )
    assert_backend_parity(schema, records)


@pytest.mark.parametrize("seed", range(6))
def test_parity_reachability(seed):
    """Plain poset attributes: native verdicts via reachability."""
    rng = random.Random(2000 + seed)
    schema, records = random_mixed_dataset(
        rng,
        n=55 + 20 * seed,
        num_total=1 + seed % 2,
        num_partial=1 + seed % 2,
        set_valued=False,
    )
    assert_backend_parity(schema, records)


@pytest.mark.parametrize("seed", range(6))
def test_parity_closure_mode(seed):
    """``native_mode="closure"``: verdicts through the interval closure."""
    rng = random.Random(3000 + seed)
    schema, records = random_mixed_dataset(
        rng, n=50 + 18 * seed, set_valued=seed % 2 == 0
    )
    assert_backend_parity(schema, records, native_mode="closure")


@pytest.mark.parametrize("seed", (5, 6))
def test_parity_generated_workload(seed):
    """Table-1-style generated workloads (bigger posets, real shapes)."""
    config = WorkloadConfig.default(
        data_size=260,
        poset=PosetGeneratorConfig(num_nodes=48, height=4, num_trees=2, seed=seed),
        seed=seed,
    )
    workload = generate_workload(config)
    assert_backend_parity(workload.schema, workload.records)


# ---------------------------------------------------------------------------
# Schema shapes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", (0, 1))
def test_parity_totally_ordered_only(seed):
    """No poset attributes at all: the pure-numeric fast paths."""
    rng = random.Random(4000 + seed)
    schema = Schema([NumericAttribute(f"t{k}") for k in range(3)])
    records = [
        Record(i, tuple(rng.randint(1, 9) for _ in range(3)), ())
        for i in range(120)
    ]
    assert_backend_parity(schema, records)


# ---------------------------------------------------------------------------
# Memo fallbacks and gate variants
# ---------------------------------------------------------------------------
def test_parity_lru_pair_cache_fallback():
    """``max_bitset_nodes=0`` forces the LRU pair-cache for every domain."""
    rng = random.Random(51)
    schema, records = random_mixed_dataset(rng, n=90, set_valued=True)

    def force_lru(dataset):
        assert dataset.kernel._relations is None
        dataset.kernel._max_bitset_nodes = 0

    assert_backend_parity(schema, records, tweak=force_lru)


def test_parity_packed_bits_fallback(monkeypatch):
    """Domains above ``_UNPACK_NODES`` use packed bitsets only."""
    import repro.core.batch as batch_mod

    monkeypatch.setattr(batch_mod, "_UNPACK_NODES", 0)
    rng = random.Random(52)
    schema, records = random_mixed_dataset(rng, n=90, set_valued=False)
    assert_backend_parity(schema, records)


def test_parity_faithful_gate():
    """The literal Fig.-6 gate (no Lemma-4.2 shortcut) stays in parity."""
    rng = random.Random(53)
    schema, records = random_mixed_dataset(rng, n=80, set_valued=True)
    assert_backend_parity(schema, records, faithful_gate=True)


# ---------------------------------------------------------------------------
# Algorithm options
# ---------------------------------------------------------------------------
def test_parity_sdc_ablation_flags():
    """SDC with each Section-5.3 ablation switch disabled."""
    rng = random.Random(54)
    schema, records = random_mixed_dataset(rng, n=80, set_valued=True)
    for flag in (
        "restrict_categories",
        "optimize_comparisons",
        "progressive_output",
    ):
        assert_backend_parity(
            schema, records, algorithms=("sdc",), options={flag: False}
        )


def test_parity_small_window_multipass():
    """Tiny BNL windows force overflow passes and carried entries."""
    rng = random.Random(55)
    schema, records = random_mixed_dataset(rng, n=120, set_valued=True)
    for algorithm in ("bnl", "bnl+"):
        assert_backend_parity(
            schema,
            records,
            algorithms=(algorithm,),
            options={"window_size": 7},
        )


def test_parity_sdc_plus_faithful_exclusion():
    """SDC+ with the paper-literal same-category exclusion."""
    rng = random.Random(56)
    schema, records = random_mixed_dataset(rng, n=80, set_valued=True)
    assert_backend_parity(
        schema,
        records,
        algorithms=("sdc+",),
        options={"faithful_category_exclusion": True},
    )
