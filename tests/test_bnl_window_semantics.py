"""Fine-grained tests of BNL's timestamped window semantics."""

from __future__ import annotations

import random

from conftest import brute_force_skyline
from repro.algorithms.bnl import bnl_passes
from repro.core.record import Record
from repro.core.schema import NumericAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.transform.dataset import TransformedDataset


def dataset_of(values):
    schema = Schema([NumericAttribute("x"), NumericAttribute("y")])
    return TransformedDataset(schema, [Record(i, v) for i, v in enumerate(values)])


def run(values, window):
    d = dataset_of(values)
    stats = ComparisonStats()
    out = list(bnl_passes(d.points, d.kernel.native_dominates, window, stats))
    return [p.record.rid for p in out], stats, d


class TestMaturation:
    def test_zero_debt_entries_emitted_at_pass_end(self):
        # Window of 2: first two incomparable records fill it with debt 0.
        values = [(1, 9), (9, 1), (2, 8), (8, 2)]
        rids, stats, d = run(values, 2)
        assert sorted(rids) == [0, 1, 2, 3]
        assert stats.tuples_scanned > len(values)  # overflow pass happened

    def test_carried_entry_released_mid_pass(self):
        """An entry with debt d matures as soon as the next pass has read
        its d predecessors; progressive emission order shows it."""
        # Window 1: (5,5) enters; (1,9) incomparable -> temp (debt source);
        # (0,10) incomparable -> temp. Pass 2 reads temp...
        values = [(5, 5), (1, 9), (0, 10)]
        rids, _, _ = run(values, 1)
        assert sorted(rids) == [0, 1, 2]

    def test_eviction_of_carried_entry(self):
        # (5,5) carried with debt; the temp record (1,1) dominates it in
        # the next pass -> carried entry must be evicted, not emitted.
        values = [(2, 2), (5, 5), (1, 1)]
        # window 2: (2,2) in, (5,5) dominated by (2,2)? yes -> dropped.
        # Make (5,5) incomparable instead:
        values = [(2, 9), (5, 5), (1, 1)]
        rids, _, _ = run(values, 1)
        assert sorted(rids) == [2]

    def test_single_pass_when_window_fits(self):
        rng = random.Random(5)
        values = [(rng.randint(0, 20), rng.randint(0, 20)) for _ in range(80)]
        _, stats, _ = run(values, 10**6)
        assert stats.tuples_scanned == 80

    def test_many_passes_tiny_window(self):
        values = [(i, 100 - i) for i in range(50)]  # pure anti-correlated
        rids, stats, d = run(values, 2)
        assert sorted(rids) == list(range(50))
        # Window 2 forces ~25 passes over shrinking temp files.
        assert stats.tuples_scanned > 300

    def test_order_of_emission_is_a_valid_certificate(self):
        """No emitted record may be dominated by a record emitted later
        (every emission is definite at emission time)."""
        rng = random.Random(6)
        values = [(rng.randint(0, 15), rng.randint(0, 15)) for _ in range(120)]
        d = dataset_of(values)
        stats = ComparisonStats()
        emitted = list(
            bnl_passes(d.points, d.kernel.native_dominates, 4, stats)
        )
        kernel = d.kernel
        for i, p in enumerate(emitted):
            for q in emitted[i + 1 :]:
                assert not kernel.native_dominates(q, p)

    def test_matches_brute_force_under_adversarial_order(self):
        # Descending quality: every record dominated by the last one read.
        values = [(i, i) for i in range(30, 0, -1)]
        rids, _, d = run(values, 3)
        assert rids == [29]
        assert brute_force_skyline(d.schema, d.records) == [29]
