"""Wire protocol: frame codec, CRC integrity, typed error mapping."""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.exceptions import (
    AdmissionRejectedError,
    BudgetExhaustedError,
    LockTimeoutError,
    ProtocolError,
    QueryCancelledError,
    QueryShedError,
    QueryTimeoutError,
    RateLimitedError,
    ServingError,
    SlowConsumerError,
)
from repro.net.protocol import (
    ERROR_CODES,
    FRAME_TYPES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameReader,
    encode_frame,
    error_payload,
)


class TestFrameCodec:
    def test_round_trip(self):
        payload = {"type": "hello", "protocol": PROTOCOL_VERSION}
        reader = FrameReader()
        frames = reader.feed(encode_frame(payload))
        assert frames == [payload]
        assert reader.pending_bytes == 0

    def test_chunked_and_coalesced_feeding(self):
        frames = [
            {"type": "query", "qid": 1, "algorithm": "sdc+"},
            {"type": "points", "qid": 1, "seq": 0, "points": []},
            {"type": "done", "qid": 1, "complete": True},
        ]
        wire = b"".join(encode_frame(f) for f in frames)
        # One byte at a time...
        reader = FrameReader()
        out = []
        for i in range(len(wire)):
            out.extend(reader.feed(wire[i : i + 1]))
        assert out == frames
        # ...and all at once.
        assert FrameReader().feed(wire) == frames

    def test_crc_mismatch_raises(self):
        wire = bytearray(encode_frame({"type": "hello", "protocol": 1}))
        wire[-1] ^= 0xFF  # corrupt the payload, not the header
        with pytest.raises(ProtocolError, match="CRC"):
            FrameReader().feed(bytes(wire))

    def test_oversize_length_prefix_raises(self):
        header = struct.pack("!II", MAX_FRAME_BYTES + 1, 0)
        with pytest.raises(ProtocolError, match="cap"):
            FrameReader().feed(header)

    def test_non_json_payload_raises(self):
        body = b"\xff\xfe not json"
        wire = struct.pack("!II", len(body), zlib.crc32(body)) + body
        with pytest.raises(ProtocolError, match="JSON"):
            FrameReader().feed(wire)

    def test_non_object_payload_raises(self):
        body = json.dumps([1, 2, 3]).encode()
        wire = struct.pack("!II", len(body), zlib.crc32(body)) + body
        with pytest.raises(ProtocolError, match="object"):
            FrameReader().feed(wire)

    def test_unknown_type_rejected_both_directions(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            encode_frame({"type": "bogus"})
        body = json.dumps({"type": "bogus"}).encode()
        wire = struct.pack("!II", len(body), zlib.crc32(body)) + body
        with pytest.raises(ProtocolError, match="unknown frame type"):
            FrameReader().feed(wire)

    def test_missing_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"qid": 1})

    def test_partial_frame_buffers(self):
        wire = encode_frame({"type": "cancel", "qid": 7})
        reader = FrameReader()
        assert reader.feed(wire[:-3]) == []
        assert reader.pending_bytes == len(wire) - 3
        assert reader.feed(wire[-3:]) == [{"type": "cancel", "qid": 7}]


class TestErrorMapping:
    @pytest.mark.parametrize(
        "error,code",
        [
            (AdmissionRejectedError("comparisons", 100.0, 10.0), "admission-rejected"),
            (QueryShedError("priority", "queue-full"), "shed"),
            (QueryTimeoutError(0.5, 0.7), "timeout"),
            (QueryCancelledError(), "cancelled"),
            (BudgetExhaustedError("comparisons", 10, 11), "budget"),
            (LockTimeoutError("read", 0.1), "lock-timeout"),
            (RateLimitedError(cost=3.0, retry_after=1.5), "rate-limited"),
            (SlowConsumerError("buffer overflow"), "slow-consumer"),
            (ProtocolError("bad frame"), "protocol"),
            (ServingError("server is read-only"), "read-only"),
            (ServingError("server is closed"), "serving"),
            (RuntimeError("surprise"), "internal"),
        ],
    )
    def test_typed_errors_map_to_wire_codes(self, error, code):
        payload = error_payload(error, qid=42)
        assert payload["type"] == "error"
        assert payload["code"] == code
        assert payload["qid"] == 42
        assert payload["message"]
        assert code in ERROR_CODES
        # Every error frame must be encodable as-is.
        assert encode_frame(payload)

    def test_detail_carries_structured_attributes(self):
        rejected = error_payload(AdmissionRejectedError("deadline", 2.0, 0.5))
        assert rejected["detail"] == {
            "reason": "deadline",
            "estimate": 2.0,
            "limit": 0.5,
        }
        limited = error_payload(RateLimitedError(cost=7.5, retry_after=0.25))
        assert limited["detail"]["retry_after"] == 0.25
        budget = error_payload(BudgetExhaustedError("answers", 3, 4))
        assert budget["detail"] == {"reason": "answers", "limit": 3, "used": 4}

    def test_qid_omitted_for_connection_level_errors(self):
        payload = error_payload(ProtocolError("bad handshake"))
        assert "qid" not in payload

    def test_frame_types_cover_the_protocol(self):
        assert FRAME_TYPES == {
            "hello",
            "query",
            "points",
            "progress",
            "reset",
            "done",
            "error",
            "cancel",
            "metrics",
        }
