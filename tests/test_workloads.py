"""Tests for workload generation (numeric families, configs, datasets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload
from repro.workloads.numeric import (
    anti_correlated,
    correlated,
    independent,
    numeric_columns,
)


class TestNumericFamilies:
    def test_domain_bounds(self):
        for maker in (independent, correlated, anti_correlated):
            data = maker(2000, 3, seed=1)
            assert data.min() >= 1
            assert data.max() <= 1000
            assert data.dtype == np.int64

    def test_shapes(self):
        assert independent(10, 4).shape == (10, 4)
        assert correlated(0, 2).shape == (0, 2)
        assert anti_correlated(5, 0).shape == (5, 0)

    def test_deterministic(self):
        assert (independent(50, 2, seed=3) == independent(50, 2, seed=3)).all()
        assert (anti_correlated(50, 2, seed=3) == anti_correlated(50, 2, seed=3)).all()

    def test_independent_roughly_uncorrelated(self):
        data = independent(5000, 2, seed=2).astype(float)
        corr = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert abs(corr) < 0.1

    def test_correlated_positive(self):
        data = correlated(5000, 2, seed=2).astype(float)
        corr = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert corr > 0.7

    def test_anti_correlated_negative(self):
        data = anti_correlated(5000, 2, seed=2).astype(float)
        corr = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert corr < -0.5

    def test_anti_correlated_bigger_skyline_than_independent(self):
        """The well-known effect the paper leans on in Fig. 12(b)."""
        from conftest import brute_force_skyline
        from repro.core.record import Record
        from repro.core.schema import NumericAttribute, Schema

        schema = Schema([NumericAttribute("a"), NumericAttribute("b")])
        ind = independent(400, 2, seed=5)
        ant = anti_correlated(400, 2, seed=5)
        sky_ind = brute_force_skyline(
            schema, [Record(i, tuple(map(int, row))) for i, row in enumerate(ind)]
        )
        sky_ant = brute_force_skyline(
            schema, [Record(i, tuple(map(int, row))) for i, row in enumerate(ant)]
        )
        assert len(sky_ant) > len(sky_ind)

    def test_dispatch(self):
        assert numeric_columns("independent", 5, 2).shape == (5, 2)
        assert numeric_columns("anti-correlated", 5, 2).shape == (5, 2)
        assert numeric_columns("ANTICORRELATED", 5, 2).shape == (5, 2)
        assert numeric_columns("correlated", 5, 2).shape == (5, 2)
        with pytest.raises(WorkloadError):
            numeric_columns("diagonal", 5, 2)

    def test_negative_args(self):
        with pytest.raises(WorkloadError):
            independent(-1, 2)
        with pytest.raises(WorkloadError):
            independent(1, -2)


class TestWorkloadConfig:
    def test_default_matches_table_1(self):
        cfg = WorkloadConfig()
        assert cfg.num_total == 2
        assert cfg.num_partial == 1
        assert cfg.correlation == "independent"
        assert cfg.data_size == 500_000
        assert cfg.poset.num_nodes == 450
        assert cfg.poset.height == 6

    def test_variants(self):
        assert WorkloadConfig.more_set_valued().num_partial == 2
        assert WorkloadConfig.more_numeric().num_total == 4
        assert WorkloadConfig.large_poset().poset.num_nodes == 1000
        assert WorkloadConfig.tall_poset().poset.height == 13
        assert WorkloadConfig.large_dataset().data_size == 1_000_000
        assert WorkloadConfig.anti_correlated().correlation == "anti-correlated"

    def test_scaled(self):
        assert WorkloadConfig.default().scaled(1234).data_size == 1234

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_total=0, num_partial=0).validate()
        with pytest.raises(WorkloadError):
            WorkloadConfig(data_size=-1).validate()
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_total=-1).validate()


class TestGenerateWorkload:
    def test_shapes_and_domains(self):
        cfg = WorkloadConfig.default(data_size=200).scaled(200)
        wl = generate_workload(cfg)
        assert len(wl) == 200
        assert wl.schema.num_total == 2
        assert wl.schema.num_partial == 1
        for r in wl.records[:20]:
            assert len(r.totals) == 2
            assert all(1 <= v <= 1000 for v in r.totals)
            assert r.partials[0] in wl.schema.partial_attrs[0].poset

    def test_distinct_posets_per_attribute(self):
        cfg = WorkloadConfig.more_set_valued(data_size=50).scaled(50)
        wl = generate_workload(cfg)
        p0 = wl.schema.partial_attrs[0].poset
        p1 = wl.schema.partial_attrs[1].poset
        assert p0 is not p1
        assert p0 != p1

    def test_deterministic(self):
        cfg = WorkloadConfig.default(data_size=100)
        a = generate_workload(cfg)
        b = generate_workload(cfg)
        assert a.records == b.records

    def test_zero_records(self):
        wl = generate_workload(WorkloadConfig.default(data_size=0))
        assert len(wl) == 0

    def test_rid_is_row_number(self):
        wl = generate_workload(WorkloadConfig.default(data_size=10))
        assert [r.rid for r in wl.records] == list(range(10))
