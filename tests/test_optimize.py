"""Tests for the MinPC / MaxPC spanning-tree optimisation (Section 4.7)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_poset
from repro.core.categories import Category
from repro.exceptions import PosetError
from repro.posets.builder import chain, diamond, random_tree
from repro.posets.classification import classify
from repro.posets.generator import generate_poset
from repro.posets.optimize import (
    SpanningTreeStrategy,
    build_forest,
    optimize_spanning_forest,
)


class TestStrategyParsing:
    def test_parse_strings(self):
        assert SpanningTreeStrategy.parse("minpc") is SpanningTreeStrategy.MINPC
        assert SpanningTreeStrategy.parse("MaxPC") is SpanningTreeStrategy.MAXPC
        assert SpanningTreeStrategy.parse("DEFAULT") is SpanningTreeStrategy.DEFAULT

    def test_parse_enum_passthrough(self):
        assert (
            SpanningTreeStrategy.parse(SpanningTreeStrategy.RANDOM)
            is SpanningTreeStrategy.RANDOM
        )

    def test_parse_unknown(self):
        with pytest.raises(PosetError):
            SpanningTreeStrategy.parse("bogus")
        with pytest.raises(PosetError):
            SpanningTreeStrategy.parse(42)

    def test_optimize_rejects_non_optimising(self, diamond_poset):
        with pytest.raises(PosetError):
            optimize_spanning_forest(diamond_poset, "default")


class TestValidity:
    @pytest.mark.parametrize("strategy", ["minpc", "maxpc"])
    def test_output_is_valid_forest(self, medium_poset, strategy):
        forest = optimize_spanning_forest(medium_poset, strategy)
        for i in range(len(medium_poset)):
            parents = medium_poset.parents_ix(i)
            if parents:
                assert forest.parent_of(i) in parents
            else:
                assert forest.parent_of(i) == -1

    def test_tree_input_unchanged_classification(self):
        """On a tree there is nothing to delete: everything stays
        completely covered and covering under either strategy."""
        p = random_tree(20, rng=random.Random(3))
        for strategy in ("minpc", "maxpc"):
            cls = classify(optimize_spanning_forest(p, strategy))
            assert not cls.partially_covered_values
            assert not cls.partially_covering_values

    def test_build_forest_dispatch(self, diamond_poset):
        assert build_forest(diamond_poset, "default").parent_array
        assert build_forest(diamond_poset, "random", random.Random(0)).parent_array
        assert build_forest(diamond_poset, "minpc").parent_array
        assert build_forest(diamond_poset, "maxpc").parent_array

    def test_chain(self):
        p = chain("abcd")
        forest = optimize_spanning_forest(p, "minpc")
        assert forest.parent_array == (-1, 0, 1, 2)


class TestStrategyDirection:
    def test_minpc_fewer_pc_than_maxpc(self):
        """On the paper-scale generator poset MinPC must not end up with
        more (p,c) values than MaxPC -- that is the defining criterion."""
        p = generate_poset(num_nodes=200, height=5, num_trees=3, seed=9)
        counts = {}
        for strategy in ("minpc", "maxpc"):
            cls = classify(optimize_spanning_forest(p, strategy))
            counts[strategy] = cls.category_counts()
        assert counts["minpc"][Category.PC] <= counts["maxpc"][Category.PC]
        assert counts["minpc"][Category.PP] >= counts["maxpc"][Category.PP]

    def test_covered_partition_is_strategy_independent(self):
        """Covered/partially-covered status depends only on the DAG."""
        p = generate_poset(num_nodes=120, height=4, num_trees=2, seed=4)
        reference = None
        for strategy in ("default", "minpc", "maxpc"):
            cls = classify(build_forest(p, strategy))
            covered = frozenset(
                i for i in range(len(p)) if cls.is_completely_covered_ix(i)
            )
            if reference is None:
                reference = covered
            else:
                assert covered == reference

    def test_diamond_minpc_vs_maxpc(self):
        """In the diamond, d has parents b and c; b is kept by insertion
        order symmetry, and either choice leaves exactly one partially
        covering chain -- both strategies must still yield valid single
        parents."""
        p = diamond()
        for strategy in ("minpc", "maxpc"):
            forest = optimize_spanning_forest(p, strategy)
            assert forest.parent_of(p.index("d")) in (p.index("b"), p.index("c"))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), strategy=st.sampled_from(["minpc", "maxpc"]))
def test_optimized_forest_always_valid(seed, strategy):
    rng = random.Random(seed)
    poset = random_poset(rng)
    forest = optimize_spanning_forest(poset, strategy)
    for i in range(len(poset)):
        parents = poset.parents_ix(i)
        if parents:
            assert forest.parent_of(i) in parents


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_greedy_internal_flags_match_final_classification(seed):
    """The incremental covering flags maintained by the greedy must agree
    with a fresh classification of the final forest."""
    rng = random.Random(seed)
    poset = random_poset(rng)
    for strategy in ("minpc", "maxpc"):
        forest = optimize_spanning_forest(poset, strategy)
        cls = classify(forest)
        # Re-derive covering from scratch and compare with the forest's
        # excluded edges: a value is partially covering iff it is an
        # ancestor-or-source of an excluded edge.
        dirty: set[int] = set()
        for u, _v in forest.excluded_edges_ix():
            dirty.add(u)
            dirty.update(poset.ancestors_ix(u))
        for i in range(len(poset)):
            assert cls.is_completely_covering_ix(i) == (i not in dirty)
