"""Unit tests for :mod:`repro.posets.builder`."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import PosetError
from repro.posets.builder import (
    antichain,
    chain,
    diamond,
    from_relations,
    from_set_family,
    paper_example_poset,
    powerset_lattice,
    random_tree,
)


class TestChainAntichain:
    def test_chain_order(self):
        p = chain([3, 2, 1])
        assert p.dominates(3, 1)
        assert not p.dominates(1, 3)

    def test_chain_single(self):
        assert len(chain(["only"])) == 1

    def test_chain_empty_rejected(self):
        with pytest.raises(PosetError):
            chain([])

    def test_antichain_no_relations(self):
        p = antichain(range(5))
        assert p.num_edges == 0
        assert not p.comparable(0, 1)


class TestDiamond:
    def test_shape(self):
        p = diamond()
        assert p.dominates("a", "d")
        assert not p.comparable("b", "c")
        assert p.num_edges == 4


class TestRandomTree:
    def test_is_tree(self):
        p = random_tree(30, rng=random.Random(1))
        assert p.is_tree()
        assert p.is_connected()
        assert len(p) == 30

    def test_branching_respected(self):
        p = random_tree(40, max_branching=2, rng=random.Random(2))
        assert all(len(p.children_ix(i)) <= 2 for i in range(len(p)))

    def test_single_node(self):
        assert len(random_tree(1)) == 1

    def test_invalid_args(self):
        with pytest.raises(PosetError):
            random_tree(0)
        with pytest.raises(PosetError):
            random_tree(5, max_branching=0)


class TestFromRelations:
    def test_collects_domain(self):
        p = from_relations([("a", "b"), ("b", "c")])
        assert set(p.values) == {"a", "b", "c"}
        assert p.dominates("a", "c")

    def test_reduces_by_default(self):
        p = from_relations([("a", "b"), ("b", "c"), ("a", "c")])
        assert p.num_edges == 2

    def test_no_reduce(self):
        p = from_relations([("a", "b"), ("b", "c"), ("a", "c")], reduce=False)
        assert p.num_edges == 3

    def test_explicit_values_keep_isolated(self):
        p = from_relations([("a", "b")], values=["a", "b", "lonely"])
        assert "lonely" in p


class TestFromSetFamily:
    def test_containment_order(self):
        p = from_set_family(
            {"big": {1, 2, 3}, "mid": {1, 2}, "small": {1}, "other": {3}}
        )
        assert p.dominates("big", "small")
        assert p.dominates("big", "other")
        assert not p.comparable("mid", "other")

    def test_cover_edges_only(self):
        p = from_set_family({"a": {1, 2, 3}, "b": {1, 2}, "c": {1}})
        assert p.num_edges == 2  # a->b->c, no shortcut a->c

    def test_equal_sets_distinct_names_incomparable(self):
        p = from_set_family({"x": {1}, "y": {1}})
        assert not p.comparable("x", "y")


class TestPowersetLattice:
    def test_sizes(self):
        p = powerset_lattice("ab")
        assert len(p) == 4
        assert p.height == 3

    def test_order(self):
        p = powerset_lattice("abc")
        assert p.dominates(frozenset("abc"), frozenset("a"))
        assert not p.comparable(frozenset("a"), frozenset("b"))

    def test_cover_edges_differ_by_one(self):
        p = powerset_lattice("abc")
        for v, w in p.edges():
            assert len(v) == len(w) + 1

    def test_too_large_rejected(self):
        with pytest.raises(PosetError):
            powerset_lattice(list(range(13)))


class TestPaperExample:
    def test_ten_values(self):
        p = paper_example_poset()
        assert len(p) == 10
        assert set(p.maximal_values) == set("abcde")

    def test_known_dominances(self):
        p = paper_example_poset()
        assert p.dominates("a", "f")
        assert p.dominates("a", "i")  # via f
        assert p.dominates("d", "j")
        assert not p.comparable("e", "i")
