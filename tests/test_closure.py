"""Tests for the compressed transitive closure and the closure-backed
native comparison mode (paper future work: alternative domain mappings)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline, random_mixed_dataset, random_poset
from repro.algorithms.base import get_algorithm
from repro.exceptions import SchemaError
from repro.posets.builder import antichain, chain, diamond, paper_example_poset, random_tree
from repro.posets.closure import IntervalClosure, _merge
from repro.posets.generator import generate_poset
from repro.posets.spanning_tree import default_spanning_forest, random_spanning_forest
from repro.transform.dataset import TransformedDataset


class TestMerge:
    def test_empty(self):
        assert _merge([]) == ()

    def test_disjoint_kept(self):
        assert _merge([(1, 2), (5, 6)]) == ((1, 2), (5, 6))

    def test_overlap_merged(self):
        assert _merge([(1, 4), (3, 6)]) == ((1, 6),)

    def test_adjacent_integers_merged(self):
        assert _merge([(1, 2), (3, 4)]) == ((1, 4),)

    def test_contained_absorbed(self):
        assert _merge([(1, 10), (3, 5)]) == ((1, 10),)

    def test_unsorted_input(self):
        assert _merge([(7, 8), (1, 2)]) == ((1, 2), (7, 8))


class TestExactness:
    @pytest.mark.parametrize(
        "poset_maker",
        [
            diamond,
            paper_example_poset,
            lambda: chain("abcdef"),
            lambda: antichain("abc"),
            lambda: random_tree(25, rng=random.Random(3)),
            lambda: generate_poset(num_nodes=120, height=5, num_trees=3, seed=7),
        ],
    )
    def test_exact_on_shapes(self, poset_maker):
        poset = poset_maker()
        closure = IntervalClosure.for_poset(poset)
        assert closure.verify_exact()

    def test_diamond_fixes_paper_false_negative(self):
        """Example 4.2's miss (c does not m-dominate d) is repaired by the
        closure: c's interval set covers d's postorder."""
        poset = diamond()
        closure = IntervalClosure.for_poset(poset)
        assert closure.reachable("c", "d")
        assert not closure.encoding.contains("c", "d")

    def test_tree_closure_is_single_interval(self):
        poset = random_tree(30, rng=random.Random(5))
        closure = IntervalClosure.for_poset(poset)
        assert closure.max_intervals == 1

    def test_interval_count_stats(self):
        poset = generate_poset(num_nodes=100, height=4, num_trees=2, seed=2)
        closure = IntervalClosure.for_poset(poset)
        assert closure.average_intervals >= 1.0
        assert closure.max_intervals >= 1

    def test_value_level_api(self):
        closure = IntervalClosure.for_poset(diamond())
        assert closure.reachable("a", "d")
        assert not closure.reachable("d", "a")
        assert not closure.reachable("a", "a")
        assert closure.intervals("a")


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_closure_exact_property(seed):
    rng = random.Random(seed)
    poset = random_poset(rng)
    closure = IntervalClosure(random_spanning_forest(poset, rng))
    assert closure.verify_exact()


class TestClosureNativeMode:
    def test_same_skyline_as_native(self):
        rng = random.Random(31)
        schema, records = random_mixed_dataset(rng, n=60, num_partial=2)
        expected = brute_force_skyline(schema, records)
        d = TransformedDataset(schema, records, native_mode="closure")
        for name in ("bnl", "bbs+", "sdc", "sdc+"):
            got = sorted(p.record.rid for p in get_algorithm(name).run(d))
            assert got == expected, name

    def test_counts_closure_not_set(self):
        rng = random.Random(32)
        schema, records = random_mixed_dataset(rng, n=60)
        d = TransformedDataset(schema, records, native_mode="closure")
        list(get_algorithm("bbs+").run(d))
        assert d.stats.native_closure > 0
        assert d.stats.native_set == 0

    def test_native_mode_validation(self):
        rng = random.Random(33)
        schema, records = random_mixed_dataset(rng, n=5)
        with pytest.raises(SchemaError):
            TransformedDataset(schema, records, native_mode="psychic")

    def test_closure_shares_forest_with_mapping(self):
        rng = random.Random(34)
        schema, records = random_mixed_dataset(rng, n=5)
        d = TransformedDataset(schema, records, native_mode="closure")
        mapping = d.mappings[0]
        assert mapping.closure.forest is mapping.forest
        assert mapping.closure is mapping.closure  # cached

    def test_kernel_closure_arity_checked(self):
        from repro.core.dominance import DominanceKernel

        rng = random.Random(35)
        schema, _ = random_mixed_dataset(rng, n=5, num_partial=2)
        with pytest.raises(SchemaError):
            DominanceKernel(schema, closures=(None,))

    def test_numeric_only_schema_ignores_closure_mode(self):
        from repro.core.record import Record
        from repro.core.schema import NumericAttribute, Schema

        schema = Schema([NumericAttribute("x")])
        d = TransformedDataset(
            schema, [Record(0, (1,)), Record(1, (2,))], native_mode="closure"
        )
        got = sorted(p.record.rid for p in get_algorithm("bnl").run(d))
        assert got == [0]
