"""Tests for the skyline-related query extensions (skyband, constrained)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline, random_mixed_dataset, record_dominates
from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.exceptions import AlgorithmError, SchemaError
from repro.posets.builder import diamond
from repro.queries.constrained import Constraint, constrained_skyline
from repro.queries.skyband import k_skyband, k_skyband_bbs, k_skyband_nested_loops
from repro.transform.dataset import TransformedDataset


def brute_force_skyband(schema, records, k):
    out = []
    for r in records:
        dominators = sum(
            1 for other in records if other is not r and record_dominates(schema, other, r)
        )
        if dominators < k:
            out.append(r.rid)
    return sorted(out)


class TestSkyband:
    def make(self, seed=0, n=60):
        rng = random.Random(seed)
        schema, records = random_mixed_dataset(rng, n=n)
        return schema, records, TransformedDataset(schema, records)

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_bbs_matches_brute_force(self, k):
        schema, records, d = self.make(seed=k)
        got = sorted(p.record.rid for p in k_skyband_bbs(d, k))
        assert got == brute_force_skyband(schema, records, k)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_nested_loops_matches_brute_force(self, k):
        schema, records, d = self.make(seed=10 + k)
        got = sorted(p.record.rid for p in k_skyband_nested_loops(d, k))
        assert got == brute_force_skyband(schema, records, k)

    def test_one_skyband_is_skyline(self):
        schema, records, d = self.make(seed=20)
        got = sorted(p.record.rid for p in k_skyband(d, 1))
        assert got == brute_force_skyline(schema, records)

    def test_skyband_monotone_in_k(self):
        _, _, d = self.make(seed=21)
        previous: set = set()
        for k in (1, 2, 3, 4):
            current = {p.record.rid for p in k_skyband(d, k)}
            assert current >= previous
            previous = current

    def test_large_k_returns_everything(self):
        _, records, d = self.make(seed=22, n=25)
        assert len(k_skyband(d, len(records) + 1)) == len(records)

    def test_invalid_k(self):
        _, _, d = self.make(seed=23, n=5)
        with pytest.raises(AlgorithmError):
            k_skyband_bbs(d, 0)
        with pytest.raises(AlgorithmError):
            k_skyband_nested_loops(d, -1)

    def test_method_dispatch(self):
        _, _, d = self.make(seed=24, n=20)
        a = sorted(p.record.rid for p in k_skyband(d, 2, "bbs"))
        b = sorted(p.record.rid for p in k_skyband(d, 2, "nested-loops"))
        assert a == b
        with pytest.raises(AlgorithmError):
            k_skyband(d, 2, "magic")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
def test_skyband_property(seed, k):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=40)
    d = TransformedDataset(schema, records)
    expected = brute_force_skyband(schema, records, k)
    assert sorted(p.record.rid for p in k_skyband_bbs(d, k)) == expected
    assert sorted(p.record.rid for p in k_skyband_nested_loops(d, k)) == expected


def hotel_dataset():
    schema = Schema(
        [
            NumericAttribute("price", "min"),
            NumericAttribute("rating", "max"),
            PosetAttribute.set_valued("tier", diamond()),
        ]
    )
    records = [
        Record(0, (100, 3), ("a",)),
        Record(1, (80, 4), ("b",)),
        Record(2, (90, 5), ("c",)),
        Record(3, (60, 2), ("d",)),
        Record(4, (300, 5), ("a",)),
        Record(5, (85, 4), ("b",)),
    ]
    return schema, records, TransformedDataset(schema, records)


class TestConstrainedSkyline:
    def brute(self, schema, records, admit):
        qualifying = [r for r in records if admit(r)]
        return brute_force_skyline(schema, qualifying)

    @pytest.mark.parametrize("method", ["bbs", "bnl"])
    def test_price_range(self, method):
        schema, records, d = hotel_dataset()
        c = Constraint(ranges={"price": (70, 150)})
        got = sorted(
            p.record.rid for p in constrained_skyline(d, c, method=method)
        )
        assert got == self.brute(schema, records, lambda r: 70 <= r.totals[0] <= 150)

    @pytest.mark.parametrize("method", ["bbs", "bnl"])
    def test_open_ended_range(self, method):
        schema, records, d = hotel_dataset()
        c = Constraint(ranges={"price": (None, 90)})
        got = sorted(
            p.record.rid for p in constrained_skyline(d, c, method=method)
        )
        assert got == self.brute(schema, records, lambda r: r.totals[0] <= 90)

    @pytest.mark.parametrize("method", ["bbs", "bnl"])
    def test_max_attribute_range(self, method):
        schema, records, d = hotel_dataset()
        c = Constraint(ranges={"rating": (4, None)})
        got = sorted(
            p.record.rid for p in constrained_skyline(d, c, method=method)
        )
        assert got == self.brute(schema, records, lambda r: r.totals[1] >= 4)

    @pytest.mark.parametrize("method", ["bbs", "bnl"])
    def test_must_dominate(self, method):
        schema, records, d = hotel_dataset()
        poset = schema.attribute("tier").poset
        c = Constraint(must_dominate={"tier": "d"})
        got = sorted(
            p.record.rid for p in constrained_skyline(d, c, method=method)
        )
        assert got == self.brute(
            schema, records, lambda r: poset.leq("d", r.partials[0])
        )

    @pytest.mark.parametrize("method", ["bbs", "bnl"])
    def test_dominated_by(self, method):
        schema, records, d = hotel_dataset()
        poset = schema.attribute("tier").poset
        c = Constraint(dominated_by={"tier": "b"})
        got = sorted(
            p.record.rid for p in constrained_skyline(d, c, method=method)
        )
        assert got == self.brute(
            schema, records, lambda r: poset.leq(r.partials[0], "b")
        )

    def test_conjunction(self):
        schema, records, d = hotel_dataset()
        poset = schema.attribute("tier").poset
        c = Constraint(
            ranges={"price": (70, 200)}, must_dominate={"tier": "d"}
        )
        got = sorted(p.record.rid for p in constrained_skyline(d, c))
        assert got == self.brute(
            schema,
            records,
            lambda r: 70 <= r.totals[0] <= 200 and poset.leq("d", r.partials[0]),
        )

    def test_empty_constraint_is_plain_skyline(self):
        schema, records, d = hotel_dataset()
        got = sorted(p.record.rid for p in constrained_skyline(d, Constraint()))
        assert got == brute_force_skyline(schema, records)

    def test_unsatisfiable(self):
        _, _, d = hotel_dataset()
        assert constrained_skyline(d, Constraint(ranges={"price": (1, 2)})) == []

    def test_validation_errors(self):
        _, _, d = hotel_dataset()
        with pytest.raises(SchemaError):
            constrained_skyline(d, Constraint(ranges={"tier": (1, 2)}))
        with pytest.raises(SchemaError):
            constrained_skyline(d, Constraint(must_dominate={"price": "a"}))
        with pytest.raises(SchemaError):
            constrained_skyline(d, Constraint(must_dominate={"tier": "zz"}))
        with pytest.raises(AlgorithmError):
            constrained_skyline(d, Constraint(), method="psychic")

    def test_excluded_records_do_not_dominate(self):
        """A WHERE-clause skyline: a dominator filtered out by the
        constraint must not suppress qualifying records."""
        schema, records, d = hotel_dataset()
        # Record 3 (price 60) dominates nothing within price >= 80... but
        # excluding cheap records must let pricier ones re-enter.
        c = Constraint(ranges={"price": (80, None)})
        got = {p.record.rid for p in constrained_skyline(d, c)}
        unconstrained = set(brute_force_skyline(schema, records))
        assert not got <= unconstrained or got == unconstrained - {0, 3} | got


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), lo=st.integers(1, 5), width=st.integers(0, 6))
def test_constrained_property(seed, lo, width):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=40)
    d = TransformedDataset(schema, records)
    c = Constraint(ranges={"t0": (lo, lo + width)})
    expected = brute_force_skyline(
        schema, [r for r in records if lo <= r.totals[0] <= lo + width]
    )
    for method in ("bbs", "bnl"):
        got = sorted(p.record.rid for p in constrained_skyline(d, c, method=method))
        assert got == expected, method
