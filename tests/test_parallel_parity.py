"""Sharded-vs-serial parity: every algorithm, kernel, seed, worker count.

CI's ``parallel-smoke`` job runs this file once per seed (it sets
``REPRO_PARALLEL_SEED``); locally every test sweeps all three seeds.

Contract asserted here:

* the merged answer *set* is identical to the serial engine's for all
  eight algorithms, both dominance backends, 2/4/8 workers and both
  schedulers (legacy ``static`` one-shot and adaptive ``steal``);
* under strata partitioning, ``sdc+`` additionally reproduces the exact
  serial emission *order* (shard order x local order = stratum order);
* the aggregate :class:`~repro.core.stats.ComparisonStats` bill equals
  the exact sum of the worker/task snapshots plus the merge-phase
  bundle, and is deterministic run-to-run with a ``"static"`` filter
  board (parent-seeded representatives only);
* a seeded chaos fault killing one worker mid-steal degrades to the
  serial engine with a *bit-identical* answer sequence.
"""

from __future__ import annotations

import functools
import os
import random

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.engine import SkylineEngine
from repro.parallel import ParallelConfig, ParallelSkylineExecutor
from repro.posets.builder import diamond

_FIXED_SEEDS = (7, 101, 2025)
_ENV_SEED = os.environ.get("REPRO_PARALLEL_SEED")
SEEDS = (int(_ENV_SEED),) if _ENV_SEED else _FIXED_SEEDS

ALL_ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+", "nn+", "dnc")
KERNELS = ("python", "numpy")
WORKER_COUNTS = (2, 4, 8)
_N = 240


@functools.lru_cache(maxsize=None)
def _engine(kernel: str, seed: int) -> SkylineEngine:
    rng = random.Random(seed)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 60), rng.randint(1, 60)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(_N)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


@functools.lru_cache(maxsize=None)
def _serial_reference(kernel: str, seed: int, algorithm: str) -> tuple:
    engine = _engine(kernel, seed)
    return tuple(p.record.rid for p in engine.run_points(algorithm))


def _summed(worker_counters, merge_counters) -> dict[str, int]:
    out: dict[str, int] = {}
    for snapshot in list(worker_counters) + [merge_counters]:
        for name, value in snapshot.items():
            out[name] = out.get(name, 0) + value
    return {k: v for k, v in out.items() if v}


@pytest.mark.parametrize("scheduler", ("static", "steal"))
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parity_all_algorithms(kernel, seed, workers, scheduler):
    engine = _engine(kernel, seed)
    config = ParallelConfig(workers=workers, scheduler=scheduler)
    with ParallelSkylineExecutor(engine.dataset, config) as executor:
        assert executor.partition.mode == "strata"
        for algorithm in ALL_ALGORITHMS:
            reference = _serial_reference(kernel, seed, algorithm)
            stats = ComparisonStats()
            result = executor.run(algorithm, stats=stats)
            assert result.parallel, (algorithm, workers, scheduler)
            assert result.scheduler == executor.effective_scheduler()
            rids = [p.record.rid for p in result.points]
            assert set(rids) == set(reference), (
                algorithm, kernel, seed, workers, scheduler,
            )
            assert len(rids) == len(reference)
            # exact aggregate = sum of worker/task snapshots + merge bundle
            aggregate = {k: v for k, v in result.counters.items() if v}
            assert aggregate == _summed(
                result.worker_counters, result.merge_counters
            ), (algorithm, kernel, seed, workers, scheduler)
            assert stats.snapshot() == result.counters


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", SEEDS)
def test_strata_mode_preserves_sdc_plus_order(kernel, seed):
    engine = _engine(kernel, seed)
    reference = list(_serial_reference(kernel, seed, "sdc+"))
    with ParallelSkylineExecutor(
        engine.dataset, ParallelConfig(workers=4, mode="strata")
    ) as executor:
        assert executor.partition.mode == "strata"
        result = executor.run("sdc+", stats=ComparisonStats())
    assert [p.record.rid for p in result.points] == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_grid_mode_parity(seed):
    engine = _engine("numpy", seed)
    with ParallelSkylineExecutor(
        engine.dataset, ParallelConfig(workers=4, mode="grid")
    ) as executor:
        assert executor.partition.mode == "grid"
        for algorithm in ("bnl", "sfs", "sdc+"):
            reference = _serial_reference("numpy", seed, algorithm)
            result = executor.run(algorithm, stats=ComparisonStats())
            assert {p.record.rid for p in result.points} == set(reference)


@pytest.mark.parametrize("scheduler", ("static", "steal"))
@pytest.mark.parametrize("seed", SEEDS)
def test_counters_deterministic_across_runs(seed, scheduler):
    # ``filter="static"`` pins the board to parent-seeded representatives,
    # so steal-mode counters cannot depend on claim timing.
    engine = _engine("python", seed)
    config = ParallelConfig(workers=4, scheduler=scheduler, filter="static")
    with ParallelSkylineExecutor(engine.dataset, config) as executor:
        first = executor.run("sdc+", stats=ComparisonStats())
        second = executor.run("sdc+", stats=ComparisonStats())
    assert first.counters == second.counters
    assert first.worker_counters == second.worker_counters
    assert [p.record.rid for p in first.points] == [
        p.record.rid for p in second.points
    ]


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_kill_mid_steal_falls_back_bit_identical(kernel, seed):
    # A seeded fault kills one drain worker while it holds a claimed
    # task (os._exit inside the steal loop).  The executor must degrade
    # to the serial engine and reproduce the serial answer *sequence*
    # exactly -- not merely the same set.
    from repro.parallel.executor import ParallelFallbackWarning
    from repro.resilience.chaos import FaultInjector

    engine = _engine(kernel, seed)
    reference = list(_serial_reference(kernel, seed, "sdc+"))
    chaos = FaultInjector(seed=seed, rate=1.0, max_faults=1)
    config = ParallelConfig(
        workers=2,
        scheduler="steal",
        tasks_per_worker=4,
        min_task_work=1.0,
        min_shard_points=16,
        chaos=chaos,
    )
    with ParallelSkylineExecutor(engine.dataset, config) as executor:
        with pytest.warns(ParallelFallbackWarning):
            result = executor.run("sdc+", stats=ComparisonStats())
    assert result.fallback
    assert not result.parallel
    assert [p.record.rid for p in result.points] == reference
    # serial fallback bills exactly what a serial run bills
    serial_stats = ComparisonStats()
    list(engine.run_points("sdc+", stats=serial_stats))
    assert result.counters == serial_stats.snapshot()
