"""Tests for the buffer pool and the 2005-era cost model."""

from __future__ import annotations

import random

import pytest

from conftest import random_mixed_dataset
from repro.algorithms.base import get_algorithm
from repro.bench.costmodel import BufferPool, CostModel
from repro.bench.harness import run_progressive
from repro.exceptions import ReproError
from repro.transform.dataset import TransformedDataset


class TestBufferPool:
    def test_hit_after_miss(self):
        pool = BufferPool(4)
        node = object()
        assert not pool.access(node)
        assert pool.access(node)
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction(self):
        pool = BufferPool(2)
        a, b, c = object(), object(), object()
        pool.access(a)
        pool.access(b)
        pool.access(c)  # evicts a
        assert not pool.access(a)  # miss again
        assert pool.resident == 2

    def test_move_to_end_keeps_hot_page(self):
        pool = BufferPool(2)
        a, b, c = object(), object(), object()
        pool.access(a)
        pool.access(b)
        pool.access(a)  # a becomes most recent
        pool.access(c)  # evicts b, not a
        assert pool.access(a)

    def test_clear(self):
        pool = BufferPool(2)
        pool.access(object())
        pool.clear()
        assert pool.resident == 0 and pool.hits == 0 and pool.misses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ReproError):
            BufferPool(0)


class TestCostModel:
    def test_io_cost(self):
        model = CostModel(random_page_ms=10, sequential_page_ms=0.1, tuples_per_page=10)
        delta = {"page_misses": 3, "tuples_scanned": 100}
        assert model.io_cost(delta) == pytest.approx(30 + 1.0)

    def test_cpu_cost_weights_set_compares_heavier(self):
        model = CostModel()
        cheap = model.cpu_cost({"m_dominance_point": 1000})
        expensive = model.cpu_cost({"native_set": 1000})
        assert expensive > cheap

    def test_total_is_sum(self):
        model = CostModel()
        delta = {"page_misses": 1, "native_set": 10, "m_dominance_point": 5}
        assert model.total_cost(delta) == pytest.approx(
            model.io_cost(delta) + model.cpu_cost(delta)
        )

    def test_empty_delta_is_free(self):
        assert CostModel().total_cost({}) == 0.0


class TestIntegration:
    def make(self, seed=0, n=300):
        rng = random.Random(seed)
        schema, records = random_mixed_dataset(rng, n=n)
        return TransformedDataset(schema, records)

    def test_misses_counted_with_pool(self):
        d = self.make()
        d.attach_buffer_pool(BufferPool(2))
        list(get_algorithm("bbs+").run(d))
        assert d.stats.page_misses > 0
        assert d.stats.page_misses <= d.stats.node_accesses

    def test_no_pool_no_misses(self):
        d = self.make()
        list(get_algorithm("bbs+").run(d))
        assert d.stats.page_misses == 0
        assert d.stats.node_accesses > 0

    def test_large_pool_mostly_hits(self):
        d = self.make()
        small_misses = self._misses_with_pool(self.make(), 2)
        large_misses = self._misses_with_pool(self.make(), 10_000)
        assert large_misses <= small_misses

    @staticmethod
    def _misses_with_pool(dataset, capacity):
        dataset.attach_buffer_pool(BufferPool(capacity))
        list(get_algorithm("bbs+").run(dataset))
        return dataset.stats.page_misses

    def test_pool_attached_to_existing_structures(self):
        d = self.make()
        d.index
        d.stratification
        for stratum in d.stratification:
            stratum.tree
        d.attach_buffer_pool(BufferPool(8))
        list(get_algorithm("sdc+").run(d))
        assert d.stats.page_misses > 0

    def test_bnl_counts_tuples_scanned(self):
        d = self.make(n=200)
        run = run_progressive(d, "bnl", window_size=8)
        assert run.final_delta["tuples_scanned"] >= 200  # multi-pass => more
