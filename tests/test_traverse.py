"""Focused tests for the shared best-first traversal (`algorithms.bbs.traverse`)."""

from __future__ import annotations

import random

from repro.algorithms.bbs import traverse
from repro.core.record import Record
from repro.core.schema import NumericAttribute, Schema
from repro.transform.dataset import TransformedDataset


def numeric_dataset(values, max_entries=4):
    dims = len(values[0]) if values else 2
    schema = Schema([NumericAttribute(f"x{k}") for k in range(dims)])
    return TransformedDataset(
        schema,
        [Record(i, v) for i, v in enumerate(values)],
        max_entries=max_entries,
    )


def run_traverse(dataset, node_pruned=None, point_pruned=None):
    node_pruned = node_pruned or (lambda node: False)
    point_pruned = point_pruned or (lambda point: False)
    return list(
        traverse(dataset.index, dataset.stats, node_pruned, point_pruned)
    )


class TestOrdering:
    def test_points_yielded_in_key_order(self):
        rng = random.Random(0)
        values = [(rng.randint(0, 50), rng.randint(0, 50)) for _ in range(200)]
        d = numeric_dataset(values)
        keys = [p.key for p in run_traverse(d)]
        assert keys == sorted(keys)

    def test_all_points_visited_without_pruning(self):
        rng = random.Random(1)
        values = [(rng.randint(0, 20), rng.randint(0, 20)) for _ in range(120)]
        d = numeric_dataset(values)
        assert sorted(p.record.rid for p in run_traverse(d)) == list(range(120))

    def test_empty_tree(self):
        d = numeric_dataset([])
        assert run_traverse(d) == []

    def test_single_point_leaf_root(self):
        d = numeric_dataset([(3, 4)])
        out = run_traverse(d)
        assert len(out) == 1 and out[0].record.rid == 0


class TestPruning:
    def test_point_pruned_blocks_emission(self):
        d = numeric_dataset([(1, 1), (9, 9)])
        out = run_traverse(d, point_pruned=lambda p: p.vector[0] > 5)
        assert [p.record.rid for p in out] == [0]

    def test_node_pruned_skips_subtrees(self):
        rng = random.Random(2)
        values = [(rng.randint(0, 9), rng.randint(0, 9)) for _ in range(100)]
        values += [(100 + i, 100 + i) for i in range(100)]  # far cluster
        d = numeric_dataset(values)

        accesses_before = d.stats.node_accesses
        out = run_traverse(d, node_pruned=lambda n: n.mins[0] >= 50)
        pruned_accesses = d.stats.node_accesses - accesses_before
        # Entire far-cluster subtrees are pruned; at most one boundary
        # leaf can leak a handful of far points into the heap.
        far_emitted = sum(1 for p in out if p.vector[0] >= 100)
        assert far_emitted < 100 // 2

        d2 = numeric_dataset(values)
        before = d2.stats.node_accesses
        run_traverse(d2)
        full_accesses = d2.stats.node_accesses - before
        assert pruned_accesses < full_accesses

    def test_node_pruned_rechecked_at_pop(self):
        """The prune callback runs again when an entry pops (Fig. 1 step 6):
        a condition that becomes true between push and pop must still
        prune.  We emulate a growing intermediate set with a flag flipped
        by the first popped point."""
        rng = random.Random(3)
        values = [(0, 0)] + [(rng.randint(40, 50), rng.randint(40, 50)) for _ in range(80)]
        d = numeric_dataset(values)
        state = {"armed": False}

        def node_pruned(node):
            return state["armed"]

        out = []
        for p in traverse(d.index, d.stats, node_pruned, lambda q: False):
            out.append(p)
            state["armed"] = True  # after the first answer, prune the rest
        # Only entries already sitting in the heap as points can still
        # arrive; whole subtrees pushed but not expanded are pruned.
        assert out[0].record.rid == 0
        assert len(out) < len(values)

    def test_access_accounting(self):
        rng = random.Random(4)
        values = [(rng.randint(0, 30), rng.randint(0, 30)) for _ in range(150)]
        d = numeric_dataset(values)
        before = d.stats.node_accesses
        run_traverse(d)
        accessed = d.stats.node_accesses - before

        def count_nodes(node):
            if node.leaf:
                return 1
            return 1 + sum(count_nodes(c) for c in node.entries)

        assert accessed == count_nodes(d.index.root)

    def test_heap_traffic_counted(self):
        d = numeric_dataset([(i, i) for i in range(50)])
        before = d.stats.snapshot()
        run_traverse(d)
        delta = d.stats.diff(before)
        assert delta["heap_pushes"] == delta["heap_pops"]
        assert delta["heap_pushes"] >= 50
