"""Randomized interleaved insert/delete stress test on the engine.

After every burst of random updates the incrementally maintained engine
must agree with an engine rebuilt from scratch on the surviving records:
same skyline answers and the same stratification shape.  Includes the
awkward orders -- deleting a record inserted moments earlier, and
re-inserting a previously deleted rid.
"""

from __future__ import annotations

import random

import pytest

from conftest import brute_force_skyline, random_mixed_dataset
from repro.engine import SkylineEngine


def _strata_shape(engine: SkylineEngine) -> list[tuple[str, int]]:
    return [
        (str(stratum.category), stratum.tree.size)
        for stratum in engine.dataset.stratification
    ]


def _check_agreement(engine: SkylineEngine, schema, live: dict) -> None:
    rebuilt = SkylineEngine(schema, list(live.values()))
    expected = brute_force_skyline(schema, list(live.values()))
    for algorithm in ("sdc+", "bbs+"):
        got = sorted(r.rid for r in engine.skyline(algorithm))
        assert got == expected, algorithm
        assert got == sorted(r.rid for r in rebuilt.skyline(algorithm))
    assert _strata_shape(engine) == _strata_shape(rebuilt)


@pytest.mark.parametrize("seed", (3, 17, 88))
def test_interleaved_insert_delete_stress(seed):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=50)
    # Start the engine on half the records; the rest are an insert pool.
    initial, pool = records[:25], records[25:]
    engine = SkylineEngine(schema, initial)
    live = {r.rid: r for r in initial}
    graveyard: list = []

    for step in range(120):
        op = rng.random()
        if op < 0.45 and pool:
            record = pool.pop(rng.randrange(len(pool)))
            engine.insert(record)
            live[record.rid] = record
            if rng.random() < 0.25:
                # Delete-just-inserted: the record never survives a query.
                assert engine.delete(record.rid)
                graveyard.append(live.pop(record.rid))
        elif op < 0.75 and live:
            rid = rng.choice(sorted(live))
            assert engine.delete(rid)
            graveyard.append(live.pop(rid))
        elif graveyard:
            # Re-insert a previously deleted rid.
            record = graveyard.pop(rng.randrange(len(graveyard)))
            engine.insert(record)
            live[record.rid] = record
        if step % 30 == 29:
            _check_agreement(engine, schema, live)

    _check_agreement(engine, schema, live)


def test_delete_missing_rid_is_noop():
    rng = random.Random(1)
    schema, records = random_mixed_dataset(rng, n=10)
    engine = SkylineEngine(schema, records)
    assert not engine.delete("no-such-rid")
    assert sorted(r.rid for r in engine.skyline("sdc+")) == brute_force_skyline(
        schema, records
    )


def test_drain_and_refill():
    rng = random.Random(9)
    schema, records = random_mixed_dataset(rng, n=20)
    engine = SkylineEngine(schema, records)
    for r in records:
        assert engine.delete(r.rid)
    assert engine.skyline("sdc+") == []
    for r in records:
        engine.insert(r)
    _check_agreement(engine, schema, {r.rid: r for r in records})
