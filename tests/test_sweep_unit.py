"""Unit tests for the scaling-sweep helper (outside pytest-benchmark)."""

from __future__ import annotations

import pytest

from repro.bench.sweep import SweepPoint, format_sweep, run_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_sweep("fig10a", [120, 240], labels=["BNL", "SDC+"])


class TestRunSweep:
    def test_point_per_size(self, sweep):
        assert [p.data_size for p in sweep] == [120, 240]

    def test_labels_filtered(self, sweep):
        assert set(sweep[0].runs) == {"BNL", "SDC+"}

    def test_agreement_enforced(self, sweep):
        for point in sweep:
            sizes = {run.skyline_size for run in point.runs.values()}
            assert sizes == {point.skyline_size}

    def test_checks_accessor(self, sweep):
        point = sweep[0]
        delta = point.runs["BNL"].final_delta
        expected = (
            delta["m_dominance_point"] + delta["native_set"] + delta["native_numeric"]
        )
        assert point.checks("BNL") == expected

    def test_size_factor_respected(self):
        points = run_sweep("fig12a", [100], labels=["SDC+"])
        assert points[0].data_size == 200  # fig12a doubles the size

    def test_experiment_object_accepted(self):
        from repro.bench.experiments import get_experiment

        points = run_sweep(get_experiment("fig10a"), [100], labels=["SDC+"])
        assert len(points) == 1


class TestFormatSweep:
    def test_empty(self):
        assert format_sweep([]) == "(empty sweep)"

    def test_table_contains_labels_and_sizes(self, sweep):
        text = format_sweep(sweep)
        assert "BNL" in text and "SDC+" in text
        assert "120" in text and "240" in text
        assert len(text.splitlines()) == 2 + len(sweep)
