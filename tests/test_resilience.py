"""Resilient query execution: deadlines, budgets, cancellation, partials."""

from __future__ import annotations

import random

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.engine import SkylineEngine
from repro.exceptions import (
    BudgetExhaustedError,
    QueryCancelledError,
    QueryTimeoutError,
    WorkloadError,
)
from repro.posets.builder import diamond
from repro.resilience import (
    NULL_CONTEXT,
    CancellationToken,
    PartialResult,
    QueryContext,
    ResourceBudget,
    execute,
)

from conftest import brute_force_skyline

ALL_ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+", "nn+", "dnc")
KERNELS = ("python", "numpy")


def _mixed_engine(kernel: str = "python", n: int = 150) -> SkylineEngine:
    rng = random.Random(23)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


def _total_engine(n: int = 120) -> SkylineEngine:
    rng = random.Random(5)
    schema = Schema([NumericAttribute("a", "min"), NumericAttribute("b", "min")])
    records = [Record(i, (rng.randint(1, 50), rng.randint(1, 50)), ()) for i in range(n)]
    return SkylineEngine(schema, records)


# ---------------------------------------------------------------------------
# QueryContext / ResourceBudget basics
# ---------------------------------------------------------------------------
def test_null_context_is_unarmed_noop():
    assert not NULL_CONTEXT.armed
    NULL_CONTEXT.checkpoint()  # must never raise
    NULL_CONTEXT.guard_heap(10**9)
    NULL_CONTEXT.guard_window(10**9)


def test_budget_rejects_nonpositive_limits():
    with pytest.raises(WorkloadError):
        ResourceBudget(max_comparisons=0)
    with pytest.raises(WorkloadError):
        ResourceBudget(max_answers=-1)


def test_cancellation_token():
    token = CancellationToken()
    assert not token.cancelled
    token.cancel()
    assert token.cancelled


# ---------------------------------------------------------------------------
# Deadlines and cancellation: honored by every algorithm
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_expired_deadline_raises_with_partial(algorithm):
    engine = _mixed_engine()
    with pytest.raises(QueryTimeoutError) as info:
        engine.query(algorithm, deadline=0.0)
    partial = info.value.partial
    assert isinstance(partial, PartialResult)
    assert not partial.complete
    assert partial.exhausted_reason == "deadline"
    assert partial.algorithm == algorithm


def test_expired_deadline_bbs_totally_ordered():
    engine = _total_engine()
    with pytest.raises(QueryTimeoutError) as info:
        engine.query("bbs", deadline=0.0)
    assert info.value.partial.exhausted_reason == "deadline"


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_precancelled_token_raises(algorithm):
    engine = _mixed_engine()
    token = CancellationToken()
    token.cancel()
    with pytest.raises(QueryCancelledError) as info:
        engine.query(algorithm, cancel=token)
    assert info.value.partial.exhausted_reason == "cancelled"


def test_generous_deadline_completes():
    engine = _mixed_engine()
    result = engine.query("sdc+", deadline=3600.0)
    assert result.complete
    assert result.exhausted_reason is None
    assert result.checkpoints > 0


# ---------------------------------------------------------------------------
# Budget exhaustion: graceful PartialResult, prefix of the emission order
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ("bbs+", "sdc", "sdc+"))
@pytest.mark.parametrize("kernel", KERNELS)
def test_comparison_budget_partial_is_prefix(algorithm, kernel):
    full = [p.record.rid for p in _mixed_engine(kernel).query(algorithm)]
    for limit in (10, 100, 1000):
        engine = _mixed_engine(kernel)
        result = engine.query(algorithm, max_comparisons=limit)
        got = [p.record.rid for p in result]
        assert got == full[: len(got)], (algorithm, kernel, limit)
        if not result.complete:
            assert result.exhausted_reason == "comparisons"
            assert result.counters  # the partial still reports its charges


def test_comparison_budget_eventually_completes():
    engine = _mixed_engine()
    result = engine.query("sdc+", max_comparisons=10**9)
    assert result.complete


@pytest.mark.parametrize("kernel", KERNELS)
def test_max_answers_prefix(kernel):
    full = [p.record.rid for p in _mixed_engine(kernel).query("sdc+")]
    assert len(full) > 3
    engine = _mixed_engine(kernel)
    result = engine.query("sdc+", max_answers=3)
    assert not result.complete
    assert result.exhausted_reason == "answers"
    assert [p.record.rid for p in result] == full[:3]


def test_heap_budget_exhausts_index_traversal():
    engine = _mixed_engine()
    result = engine.query("bbs+", max_heap_entries=2)
    assert not result.complete
    assert result.exhausted_reason == "heap_entries"


def test_window_budget_exhausts_bnl():
    engine = _mixed_engine()
    result = engine.query("bnl", max_window_entries=2)
    assert not result.complete
    assert result.exhausted_reason == "window_entries"


def test_budget_error_carries_usage():
    err = BudgetExhaustedError("comparisons", limit=10, used=11)
    assert err.reason == "comparisons"
    assert err.limit == 10 and err.used == 11


# ---------------------------------------------------------------------------
# Module-level execute() and context reuse
# ---------------------------------------------------------------------------
def test_execute_restores_dataset_context():
    engine = _mixed_engine()
    dataset = engine.dataset
    assert dataset.context is NULL_CONTEXT
    ctx = QueryContext(budget=ResourceBudget(max_comparisons=50))
    execute(dataset, "sdc+", ctx)
    assert dataset.context is NULL_CONTEXT


def test_engine_query_accepts_prebuilt_context():
    engine = _mixed_engine()
    ctx = QueryContext(budget=ResourceBudget(max_answers=2))
    result = engine.query("sdc+", context=ctx)
    assert len(result) == 2
    assert result.exhausted_reason == "answers"


def test_complete_result_matches_reference():
    engine = _mixed_engine()
    records = [p.record for p in engine.dataset.points]
    expected = brute_force_skyline(engine.dataset.schema, records)
    result = engine.query("sdc+")
    assert result.complete
    assert sorted(r.rid for r in result.records) == expected
    assert result.elapsed >= 0.0
    assert len(result) == len(result.points)
