"""Smoke tests: every example script runs end to end on reduced input."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Cheap & Cheerful" in out
    assert "Fitness Inn Annex" not in out.split("Dominated")[0]


def test_org_hierarchy():
    out = run_example("org_hierarchy.py")
    assert "Mona" in out
    assert "Nils" in out.split("dominated:")[1]


def test_hotel_search_small():
    out = run_example("hotel_search.py", "400")
    assert "all algorithms agree" in out
    for name in ("bnl", "bbs+", "sdc+"):
        assert name in out


def test_progressive_dashboard_small():
    out = run_example("progressive_dashboard.py", "400")
    assert "emission timelines" in out
    assert "skyline size:" in out


def test_live_catalogue():
    out = run_example("live_catalogue.py")
    assert "initial skyline" in out
    assert "1-skyband" in out
    assert "budget skyline" in out
    assert "maintained skyline" in out


def test_paper_walkthrough():
    out = run_example("paper_walkthrough.py")
    assert "f(a) = [1, 4]" in out
    assert "partially covering: abcdfh" in out
    assert "R(c,p), R(c,c)" in out
    assert "agree" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "hotel_search.py",
        "org_hierarchy.py",
        "progressive_dashboard.py",
        "live_catalogue.py",
        "paper_walkthrough.py",
    ],
)
def test_examples_have_docstrings(name):
    text = (EXAMPLES / name).read_text()
    assert text.startswith('"""')
    assert "Run:" in text
