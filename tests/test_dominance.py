"""Tests for the dominance kernel (m-dominance, native, CompareDominance)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_mixed_dataset, record_dominates
from repro.core.categories import Category
from repro.core.dominance import DominanceKernel
from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.posets.poset import Poset
from repro.transform.dataset import TransformedDataset


def counterexample_poset() -> Poset:
    """A poset on which the paper-literal pseudocode goes wrong.

    With the default (first-parent) spanning forest:

    * ``a`` is ``(p,p)`` with uncovered level 1,
    * ``b`` is ``(p,p)`` with uncovered level 2 and is natively dominated
      by ``a`` through the excluded edge ``(a, b)``,
    * ``z`` is ``(p,c)`` with level 3 and is natively dominated by ``b``
      through the excluded edge ``(b, z)``.

    Edge insertion order matters: it pins the default forest to
    ``{(r,a), (t,b), (u,z)}``.
    """
    return Poset(
        ["r", "s", "t", "u", "a", "b", "z"],
        [("r", "a"), ("s", "a"), ("t", "b"), ("a", "b"), ("u", "z"), ("b", "z")],
    )


@pytest.fixture
def counterexample_dataset() -> TransformedDataset:
    poset = counterexample_poset()
    schema = Schema([PosetAttribute.set_valued("p", poset)])
    records = [Record(v, (), (v,)) for v in poset.values]
    return TransformedDataset(schema, records)


def point_of(dataset: TransformedDataset, value):
    return next(p for p in dataset.points if p.record.rid == value)


class TestCounterexampleClassification:
    def test_categories(self, counterexample_dataset):
        d = counterexample_dataset
        assert point_of(d, "a").category is Category.PP
        assert point_of(d, "b").category is Category.PP
        assert point_of(d, "z").category is Category.PC
        assert point_of(d, "u").category is Category.CC

    def test_levels(self, counterexample_dataset):
        d = counterexample_dataset
        assert point_of(d, "a").level == 1
        assert point_of(d, "b").level == 2
        assert point_of(d, "z").level == 3

    def test_native_without_m_dominance(self, counterexample_dataset):
        d = counterexample_dataset
        a, b, z = (point_of(d, v) for v in "abz")
        kernel = d.kernel
        assert kernel.native_dominates(a, b)
        assert not kernel.m_dominates(a, b)
        assert kernel.native_dominates(b, z)
        assert not kernel.m_dominates(b, z)


class TestCompareDominance:
    def test_m_dominance_fast_path(self, counterexample_dataset):
        d = counterexample_dataset
        r, a = point_of(d, "r"), point_of(d, "a")
        assert d.kernel.compare_dominance(r, a) == -1
        assert d.kernel.compare_dominance(a, r) == 1

    def test_native_fallback_both_directions(self, counterexample_dataset):
        d = counterexample_dataset
        a, b = point_of(d, "a"), point_of(d, "b")
        assert d.kernel.compare_dominance(a, b) == -1
        assert d.kernel.compare_dominance(b, a) == 1

    def test_incomparable(self, counterexample_dataset):
        d = counterexample_dataset
        r, s = point_of(d, "r"), point_of(d, "s")
        assert d.kernel.compare_dominance(r, s) == 0

    def test_identical_points_zero(self):
        schema = Schema([NumericAttribute("x")])
        records = [Record(0, (5,)), Record(1, (5,))]
        d = TransformedDataset(schema, records)
        assert d.kernel.compare_dominance(d.points[0], d.points[1]) == 0

    def test_faithful_gate_misses_pc_target(self, counterexample_dataset):
        """Fig. 6's single gate misses (c,p)/(p,p) natively dominating a
        (p,c) point: z in (p,c) is dominated by b but the gate requires z
        to be partially covering."""
        d = counterexample_dataset
        b, z = point_of(d, "b"), point_of(d, "z")
        faithful = DominanceKernel(d.schema, ComparisonStats(), faithful_gate=True)
        assert faithful.compare_dominance(z, b) == 0  # the paper-literal miss
        assert d.kernel.compare_dominance(z, b) == 1  # corrected gate

    def test_gates_agree_with_ground_truth(self, counterexample_dataset):
        d = counterexample_dataset
        kernel = d.kernel
        for x in d.points:
            for y in d.points:
                expected = 0
                if record_dominates(d.schema, y.record, x.record):
                    expected = 1
                elif record_dominates(d.schema, x.record, y.record):
                    expected = -1
                assert kernel.compare_dominance(x, y) == expected


class TestNativeDominance:
    def test_numeric_only_schema(self):
        schema = Schema([NumericAttribute("x"), NumericAttribute("y", "max")])
        records = [Record(0, (1, 9)), Record(1, (2, 5)), Record(2, (1, 9))]
        d = TransformedDataset(schema, records)
        k = d.kernel
        assert k.native_dominates(d.points[0], d.points[1])
        assert not k.native_dominates(d.points[1], d.points[0])
        assert not k.native_dominates(d.points[0], d.points[2])  # duplicate

    def test_counts_native_numeric_vs_set(self):
        schema = Schema([NumericAttribute("x"), NumericAttribute("y")])
        d = TransformedDataset(schema, [Record(0, (1, 2)), Record(1, (3, 4))])
        d.kernel.native_dominates(d.points[0], d.points[1])
        assert d.stats.native_numeric == 1
        assert d.stats.native_set == 0

    def test_set_attr_counts_native_set(self, counterexample_dataset):
        d = counterexample_dataset
        before = d.stats.native_set
        d.kernel.native_dominates(point_of(d, "a"), point_of(d, "b"))
        assert d.stats.native_set == before + 1

    def test_reachability_mode(self):
        poset = counterexample_poset()
        schema = Schema([PosetAttribute("p", poset)])  # no set domain
        records = [Record(v, (), (v,)) for v in poset.values]
        d = TransformedDataset(schema, records)
        a, b = point_of(d, "a"), point_of(d, "b")
        assert d.kernel.native_dominates(a, b)
        assert not d.kernel.native_dominates(b, a)

    def test_m_dominates_strictness(self):
        schema = Schema([NumericAttribute("x"), NumericAttribute("y")])
        d = TransformedDataset(schema, [Record(0, (1, 2)), Record(1, (1, 2))])
        assert not d.kernel.m_dominates(d.points[0], d.points[1])

    def test_m_dominates_mins(self):
        schema = Schema([NumericAttribute("x"), NumericAttribute("y")])
        d = TransformedDataset(schema, [Record(0, (1, 2))])
        p = d.points[0]
        assert d.kernel.m_dominates_mins(p, (2.0, 3.0))
        assert not d.kernel.m_dominates_mins(p, (1.0, 2.0))  # equal corner
        assert not d.kernel.m_dominates_mins(p, (0.0, 5.0))

    def test_full_dominates(self, counterexample_dataset):
        d = counterexample_dataset
        a, b, r = point_of(d, "a"), point_of(d, "b"), point_of(d, "r")
        assert d.kernel.full_dominates(a, b)  # native-only pair
        assert d.kernel.full_dominates(r, a)  # m-dominance pair
        assert not d.kernel.full_dominates(b, a)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_kernel_agrees_with_brute_force(seed):
    """m-dominance implies native dominance; native dominance matches the
    definition-level brute force; CompareDominance agrees with both."""
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=25)
    d = TransformedDataset(schema, records)
    k = d.kernel
    pts = d.points
    for i in range(len(pts)):
        for j in range(len(pts)):
            if i == j:
                continue
            x, y = pts[i], pts[j]
            truth = record_dominates(schema, x.record, y.record)
            assert k.native_dominates(x, y) == truth
            if k.m_dominates(x, y):
                assert truth
            ret = k.compare_dominance(x, y)
            if truth:
                assert ret == -1
            elif record_dominates(schema, y.record, x.record):
                assert ret == 1
            else:
                assert ret == 0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_lemma_4_2_on_records(seed):
    """Record-level Lemma 4.2: completely covering dominator or completely
    covered target forces dominance == m-dominance."""
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=25, num_partial=2)
    d = TransformedDataset(schema, records)
    k = d.kernel
    for x in d.points:
        for y in d.points:
            if x is y:
                continue
            if x.category.completely_covering or y.category.completely_covered:
                assert k.native_dominates(x, y) == k.m_dominates(x, y)
