"""Tests for skyline layers, top-k dominating and the reference module."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_mixed_dataset
from repro.core.record import Record
from repro.core.schema import NumericAttribute, Schema
from repro.exceptions import AlgorithmError
from repro.queries.layers import layer_of, skyline_layers
from repro.queries.topk import dominance_counts, top_k_dominating
from repro.reference import (
    reference_dominance_count,
    reference_dominates,
    reference_skyband,
    reference_skyline,
)
from repro.transform.dataset import TransformedDataset


def brute_force_layers(schema, records):
    remaining = list(records)
    layers = []
    while remaining:
        layer = reference_skyline(schema, remaining)
        layers.append(sorted(r.rid for r in layer))
        chosen = {r.rid for r in layer}
        remaining = [r for r in remaining if r.rid not in chosen]
    return layers


class TestLayers:
    def make(self, seed=0, n=50):
        rng = random.Random(seed)
        schema, records = random_mixed_dataset(rng, n=n)
        return schema, records, TransformedDataset(schema, records)

    @pytest.mark.parametrize("algorithm", ["bnl", "bbs+", "sdc+"])
    def test_layers_match_brute_force(self, algorithm):
        schema, records, d = self.make(seed=1)
        expected = brute_force_layers(schema, records)
        got = [
            sorted(p.record.rid for p in layer)
            for layer in skyline_layers(d, algorithm=algorithm)
        ]
        assert got == expected

    def test_layers_partition_everything(self):
        _, records, d = self.make(seed=2)
        seen = []
        for layer in skyline_layers(d):
            seen.extend(p.record.rid for p in layer)
        assert sorted(seen) == sorted(r.rid for r in records)

    def test_max_layers(self):
        _, _, d = self.make(seed=3)
        layers = list(skyline_layers(d, max_layers=2))
        assert len(layers) == 2

    def test_max_layers_validation(self):
        _, _, d = self.make(seed=4, n=5)
        with pytest.raises(AlgorithmError):
            list(skyline_layers(d, max_layers=0))

    def test_layer_of(self):
        schema = Schema([NumericAttribute("x")])
        records = [Record("best", (1,)), Record("mid", (2,)), Record("worst", (3,))]
        d = TransformedDataset(schema, records)
        assert layer_of(d, "best") == 1
        assert layer_of(d, "mid") == 2
        assert layer_of(d, "worst") == 3
        assert layer_of(d, "missing") == 0

    def test_empty_dataset(self):
        schema = Schema([NumericAttribute("x")])
        d = TransformedDataset(schema, [])
        assert list(skyline_layers(d)) == []

    def test_layer_count_bounded_by_longest_chain(self):
        # An antichain peels in exactly one layer.
        rng = random.Random(5)
        schema, records, _ = self.make(seed=5, n=1)
        clones = [Record(i, records[0].totals, records[0].partials) for i in range(8)]
        d = TransformedDataset(schema, clones)
        layers = list(skyline_layers(d))
        assert len(layers) == 1
        assert len(layers[0]) == 8


class TestTopKDominating:
    def make(self, seed=0, n=40):
        rng = random.Random(seed)
        schema, records = random_mixed_dataset(rng, n=n)
        return schema, records, TransformedDataset(schema, records)

    def test_counts_match_reference(self):
        schema, records, d = self.make(seed=7)
        counts = dominance_counts(d)
        for r in records:
            dominated = sum(
                1 for other in records if other is not r and reference_dominates(schema, r, other)
            )
            assert counts[r.rid] == dominated

    def test_top_k_sorted_and_sized(self):
        _, _, d = self.make(seed=8)
        top = top_k_dominating(d, 5)
        assert len(top) == 5
        values = [count for _, count in top]
        assert values == sorted(values, reverse=True)

    def test_k_larger_than_data(self):
        _, records, d = self.make(seed=9, n=10)
        assert len(top_k_dominating(d, 50)) == 10

    def test_invalid_k(self):
        _, _, d = self.make(seed=10, n=5)
        with pytest.raises(AlgorithmError):
            top_k_dominating(d, 0)

    def test_chain_counts(self):
        schema = Schema([NumericAttribute("x")])
        records = [Record(i, (i,)) for i in range(5)]
        d = TransformedDataset(schema, records)
        top = top_k_dominating(d, 1)
        assert top[0][0].record.rid == 0
        assert top[0][1] == 4


class TestReferenceModule:
    def test_skyband_k1_is_skyline(self):
        rng = random.Random(11)
        schema, records = random_mixed_dataset(rng, n=30)
        a = {r.rid for r in reference_skyline(schema, records)}
        b = {r.rid for r in reference_skyband(schema, records, 1)}
        assert a == b

    def test_dominance_count_zero_for_skyline(self):
        rng = random.Random(12)
        schema, records = random_mixed_dataset(rng, n=30)
        for r in reference_skyline(schema, records):
            assert reference_dominance_count(schema, records, r) == 0

    def test_dominates_irreflexive(self):
        rng = random.Random(13)
        schema, records = random_mixed_dataset(rng, n=5)
        for r in records:
            assert not reference_dominates(schema, r, r)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_layers_property(seed):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=30)
    d = TransformedDataset(schema, records)
    got = [
        sorted(p.record.rid for p in layer) for layer in skyline_layers(d)
    ]
    assert got == brute_force_layers(schema, records)
    # No record in layer i+1 dominates any record in layer i, and every
    # record in layer i+1 is dominated by someone in layers 1..i.
    flat = {}
    for number, layer in enumerate(got, 1):
        for rid in layer:
            flat[rid] = number
    by_rid = {r.rid: r for r in records}
    for rid, number in flat.items():
        if number == 1:
            continue
        assert any(
            reference_dominates(schema, by_rid[other], by_rid[rid])
            for other, other_layer in flat.items()
            if other_layer == number - 1
        )
