"""Round-trip property tests for persistence and the strategies module."""

from __future__ import annotations

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_mixed_dataset, random_poset
from repro.io import (
    load_workload,
    poset_from_dict,
    poset_to_dict,
    records_from_list,
    records_to_list,
    save_workload,
    schema_from_dict,
    schema_to_dict,
)
from repro.reference import reference_skyline


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_poset_roundtrip_property(seed):
    poset = random_poset(random.Random(seed))
    assert poset_from_dict(json.loads(json.dumps(poset_to_dict(poset)))) == poset


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_schema_roundtrip_preserves_dominance(seed):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=12, num_total=1)
    restored = schema_from_dict(json.loads(json.dumps(schema_to_dict(schema))))
    restored_records = records_from_list(
        json.loads(json.dumps(records_to_list(records)))
    )
    a = sorted(r.rid for r in reference_skyline(schema, records))
    b = sorted(r.rid for r in reference_skyline(restored, restored_records))
    assert a == b


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_workload_file_roundtrip_property(seed, tmp_path_factory):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(rng, n=15)
    path = tmp_path_factory.mktemp("wl") / f"wl-{seed}.json"
    save_workload(path, schema, records)
    schema2, records2 = load_workload(path)
    assert len(records2) == len(records)
    a = sorted(r.rid for r in reference_skyline(schema, records))
    b = sorted(r.rid for r in reference_skyline(schema2, records2))
    assert a == b
