"""Tests for the NN+ skyline algorithm."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import brute_force_skyline, random_mixed_dataset
from repro.algorithms.base import get_algorithm
from repro.algorithms.nn import _nearest_in_region
from repro.core.record import Record
from repro.core.schema import NumericAttribute, Schema
from repro.transform.dataset import TransformedDataset


def numeric_dataset(values, bulk=True):
    dims = len(values[0]) if values else 2
    schema = Schema([NumericAttribute(f"x{k}") for k in range(dims)])
    return TransformedDataset(
        schema, [Record(i, v) for i, v in enumerate(values)], bulk_load=bulk,
        max_entries=8,
    )


class TestNearestInRegion:
    def test_unbounded_returns_global_minimum(self):
        d = numeric_dataset([(5, 5), (1, 2), (3, 1)])
        p = _nearest_in_region(d.index, (float("inf"),) * 2, d.stats)
        assert p.record.rid == 1  # key 3 is smallest

    def test_bounds_are_exclusive(self):
        d = numeric_dataset([(1, 2), (4, 4)])
        p = _nearest_in_region(d.index, (4.0, 4.0), d.stats)
        assert p.record.rid == 0
        p = _nearest_in_region(d.index, (1.0, 2.0), d.stats)
        assert p is None  # (1,2) excluded: coordinates not strictly below

    def test_empty_tree(self):
        schema = Schema([NumericAttribute("x")])
        d = TransformedDataset(schema, [])
        assert _nearest_in_region(d.index, (float("inf"),), d.stats) is None

    def test_region_restriction(self):
        d = numeric_dataset([(1, 10), (10, 1), (6, 6)])
        # Only points with x0 < 5 qualify -> rid 0 despite larger key.
        p = _nearest_in_region(d.index, (5.0, float("inf")), d.stats)
        assert p.record.rid == 0


class TestNNPlus:
    def test_simple(self):
        d = numeric_dataset([(1, 5), (5, 1), (3, 3), (4, 4), (6, 6)])
        got = sorted(p.record.rid for p in get_algorithm("nn+").run(d))
        assert got == [0, 1, 2]

    def test_matches_brute_force_numeric(self):
        rng = random.Random(1)
        values = [(rng.randint(0, 40), rng.randint(0, 40)) for _ in range(150)]
        d = numeric_dataset(values)
        got = sorted(p.record.rid for p in get_algorithm("nn+").run(d))
        assert got == brute_force_skyline(d.schema, d.records)

    def test_matches_brute_force_mixed(self, small_dataset, small_truth):
        got = sorted(p.record.rid for p in get_algorithm("nn+").run(small_dataset))
        assert got == small_truth

    def test_duplicates_preserved(self):
        d = numeric_dataset([(2, 2), (2, 2), (2, 2), (5, 5)])
        got = sorted(p.record.rid for p in get_algorithm("nn+").run(d))
        assert got == [0, 1, 2]

    def test_empty(self):
        schema = Schema([NumericAttribute("x")])
        d = TransformedDataset(schema, [])
        assert list(get_algorithm("nn+").run(d)) == []

    def test_registered(self):
        from repro.algorithms.base import available_algorithms

        assert "nn+" in available_algorithms()

    def test_dynamic_index(self):
        rng = random.Random(2)
        values = [(rng.randint(0, 30), rng.randint(0, 30), rng.randint(0, 30)) for _ in range(80)]
        d = numeric_dataset(values, bulk=False)
        got = sorted(p.record.rid for p in get_algorithm("nn+").run(d))
        assert got == brute_force_skyline(d.schema, d.records)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_total=st.integers(0, 2),
    num_partial=st.integers(1, 2),
)
def test_nn_plus_agreement_property(seed, num_total, num_partial):
    rng = random.Random(seed)
    schema, records = random_mixed_dataset(
        rng, n=40, num_total=num_total, num_partial=num_partial
    )
    d = TransformedDataset(schema, records)
    got = sorted(p.record.rid for p in get_algorithm("nn+").run(d))
    assert got == brute_force_skyline(schema, records)
