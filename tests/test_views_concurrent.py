"""Cache correctness under concurrent reads and interleaved updates.

The staleness protocol: every served answer is tagged with the dataset
``update_version`` it reflects (``QueryHandle.served_version``).  The
single writer logs the exact record population at every version, so an
offline replay can recompute the *reference* answer for each version a
reader observed and assert the served rid set matches -- a stale hit
(an answer from version ``v`` served after version ``v+1`` committed
*tagged as* ``v+1``) is impossible to miss.  Runs with two fixed seeds
so the interleavings are reproducible.

The rollback case proves the other half of the invalidation protocol:
a chaos-injected update fault rolls the dataset back *before* listeners
fire, so a failed update must leave every cached entry resident and
the invalidation counter untouched.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.engine import SkylineEngine
from repro.exceptions import KernelError
from repro.posets.builder import diamond
from repro.queries.constrained import Constraint, constrained_skyline
from repro.resilience.chaos import FaultInjector, inject_update_faults
from repro.serving import QueryRequest, SkylineServer
from repro.transform.dataset import TransformedDataset

SEEDS = (7, 2025)
READERS = 4
QUERIES_PER_READER = 12
WRITER_OPS = 10


def _make_engine(kernel: str = "python", n: int = 80, seed: int = 23) -> SkylineEngine:
    rng = random.Random(seed)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


def _reference_rids(schema, records, constraint=None) -> frozenset:
    """Recompute the answer for one logged version from scratch."""
    from repro.algorithms.base import get_algorithm

    dataset = TransformedDataset(schema, records, kernel="python")
    if constraint is None:
        points = get_algorithm("bnl").run(dataset)
    else:
        points = constrained_skyline(dataset, constraint)
    return frozenset(str(p.record.rid) for p in points)


@pytest.mark.parametrize("seed", SEEDS)
def test_readers_never_observe_stale_answers(seed):
    engine = _make_engine(seed=seed)
    schema = engine.dataset.schema
    poset = schema.partial_attrs[0].poset
    constraint = Constraint(ranges={"a": (None, 25.0)})

    # version -> exact record population after that version committed
    versions: dict[int, list[Record]] = {0: list(engine.dataset.records)}
    observations: list[tuple[int, str, frozenset]] = []
    reader_errors: list[BaseException] = []
    begin = threading.Barrier(READERS + 1)

    with SkylineServer(engine, workers=READERS, cache=True) as server:

        def reader(reader_id: int) -> None:
            rng = random.Random(seed * 1009 + reader_id)
            begin.wait()
            try:
                for _ in range(QUERIES_PER_READER):
                    if rng.random() < 0.7:
                        request, kind = QueryRequest(), "skyline"
                    else:
                        request = QueryRequest(
                            algorithm="bbs+", constraint=constraint
                        )
                        kind = "constrained"
                    handle = server.submit(request)
                    result = handle.result(timeout=60)
                    assert result.complete
                    observations.append(
                        (
                            handle.served_version,
                            kind,
                            frozenset(
                                str(p.record.rid) for p in result.points
                            ),
                        )
                    )
            except BaseException as err:  # surfaced after join
                reader_errors.append(err)

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(READERS)
        ]
        for thread in threads:
            thread.start()

        # Single writer, interleaved with the reader storm.
        write_rng = random.Random(seed * 7919)
        population = list(engine.dataset.records)
        begin.wait()
        for step in range(WRITER_OPS):
            if write_rng.random() < 0.4 and len(population) > 20:
                victim = write_rng.choice(population)
                assert server.delete(victim.rid)
                population = [r for r in population if r.rid != victim.rid]
            else:
                record = Record(
                    f"w{seed}-{step}",
                    (write_rng.randint(1, 40), write_rng.randint(1, 40)),
                    (poset.value(write_rng.randrange(len(poset))),),
                )
                server.insert(record)
                population = population + [record]
            versions[engine.dataset.update_version] = list(population)

        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        cache_section = server.metrics.snapshot()["cache"]

    assert not reader_errors, reader_errors
    assert len(observations) == READERS * QUERIES_PER_READER
    assert engine.dataset.update_version == WRITER_OPS

    # Offline replay: every served answer must equal the reference
    # recompute for the exact version it was tagged with.
    references: dict[tuple[int, str], frozenset] = {}
    for version, kind, rids in observations:
        assert version in versions, f"answer tagged unknown version {version}"
        key = (version, kind)
        if key not in references:
            references[key] = _reference_rids(
                schema,
                versions[version],
                constraint if kind == "constrained" else None,
            )
        assert rids == references[key], (
            f"stale answer at version {version} ({kind}): "
            f"served {sorted(rids)} != reference {sorted(references[key])}"
        )

    # The run must actually have exercised the cache, not just missed
    # through it.
    assert cache_section["hits"] > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_failed_update_rolls_back_without_invalidating_cache(seed):
    engine = _make_engine(seed=seed)
    constraint = Constraint(ranges={"a": (None, 30.0)})
    with SkylineServer(engine, workers=2, cache=True) as server:
        # Warm the cache: one shaped answer + the materialized skyline.
        cold = server.submit(
            QueryRequest(algorithm="bbs+", constraint=constraint)
        ).result(timeout=60)
        baseline = frozenset(str(p.record.rid) for p in cold.points)
        before = server.views.cache.snapshot()
        invalidations_before = server.metrics.snapshot()["cache"][
            "invalidations"
        ]

        injector = inject_update_faults(
            engine.dataset, FaultInjector(seed=seed, fail_after=1)
        )
        with pytest.raises(KernelError):
            server.insert(Record("chaos", (1, 1), ("b",)))
        assert injector.fired == 1
        # Rolled back before listeners fire: no version bump, no patch.
        assert engine.dataset.update_version == 0
        assert server.views.patches == 0

        after = server.views.cache.snapshot()
        assert after["shapes"] == before["shapes"]
        assert after["entries"] == before["entries"]
        assert (
            server.metrics.snapshot()["cache"]["invalidations"]
            == invalidations_before
        )

        # The cached answer still serves -- as a hit, zero comparisons,
        # identical rid set.
        hot_handle = server.submit(
            QueryRequest(algorithm="bbs+", constraint=constraint)
        )
        hot = hot_handle.result(timeout=60)
        assert hot.cached
        assert hot_handle.stats.total_dominance_checks == 0
        assert frozenset(str(p.record.rid) for p in hot.points) == baseline
        # The materialized view survived too.
        view_hit = server.submit(QueryRequest()).result(timeout=60)
        assert view_hit.cached
