"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.posets.builder import diamond, paper_example_poset
from repro.posets.generator import PosetGeneratorConfig, generate_poset
from repro.posets.poset import Poset
from repro.transform.dataset import TransformedDataset
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload


# ---------------------------------------------------------------------------
# Ground truth (thin wrappers over the library's public reference oracles)
# ---------------------------------------------------------------------------
from repro.reference import reference_dominates, reference_skyline  # noqa: E402


def record_dominates(schema: Schema, r1: Record, r2: Record) -> bool:
    """Brute-force native dominance straight from the definitions."""
    return reference_dominates(schema, r1, r2)


def brute_force_skyline(schema: Schema, records: list[Record]) -> list:
    """O(n^2) reference skyline; returns sorted record ids."""
    return sorted(r.rid for r in reference_skyline(schema, records))


def random_poset(rng: random.Random, max_nodes: int = 14) -> Poset:
    """Small random DAG poset with adjacent-level edges (always Hasse)."""
    n = rng.randint(1, max_nodes)
    height = rng.randint(1, min(4, n))
    levels = [rng.randrange(height) for _ in range(n)]
    levels[0] = 0
    edges = []
    for i in range(n):
        for j in range(n):
            if levels[j] == levels[i] + 1 and rng.random() < 0.4:
                edges.append((i, j))
    return Poset(range(n), edges)


def random_mixed_dataset(
    rng: random.Random,
    n: int = 60,
    num_total: int = 1,
    num_partial: int = 1,
    set_valued: bool = True,
):
    """A small random schema + records pair for agreement tests."""
    attrs = [NumericAttribute(f"t{k}") for k in range(num_total)]
    posets = [random_poset(rng) for _ in range(num_partial)]
    for k, poset in enumerate(posets):
        if set_valued:
            attrs.append(PosetAttribute.set_valued(f"p{k}", poset))
        else:
            attrs.append(PosetAttribute(f"p{k}", poset))
    schema = Schema(attrs)
    records = [
        Record(
            i,
            tuple(rng.randint(1, 10) for _ in range(num_total)),
            tuple(poset.value(rng.randrange(len(poset))) for poset in posets),
        )
        for i in range(n)
    ]
    return schema, records


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------
@pytest.fixture
def diamond_poset() -> Poset:
    return diamond()


@pytest.fixture
def fig4_poset() -> Poset:
    return paper_example_poset()


@pytest.fixture(scope="session")
def medium_poset() -> Poset:
    return generate_poset(
        PosetGeneratorConfig(num_nodes=60, height=4, num_trees=3, seed=5)
    )


@pytest.fixture(scope="session")
def small_workload():
    config = WorkloadConfig.default(
        data_size=300,
        poset=PosetGeneratorConfig(num_nodes=40, height=4, num_trees=2, seed=3),
        seed=11,
    )
    return generate_workload(config)


@pytest.fixture(scope="session")
def small_dataset(small_workload) -> TransformedDataset:
    return TransformedDataset(small_workload.schema, small_workload.records)


@pytest.fixture(scope="session")
def small_truth(small_workload):
    return brute_force_skyline(small_workload.schema, small_workload.records)
