"""Tests for the R*-tree substrate (dynamic insert, STR bulk load, heap)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categories import Category
from repro.core.record import Record
from repro.exceptions import RTreeError
from repro.rtree.bulk import str_bulk_load
from repro.rtree.heap import EntryHeap, entry_key
from repro.rtree.node import Node
from repro.rtree.rstar import RStarTree
from repro.transform.point import Point


def make_point(vector, rid=0, category=Category.CC, level=0) -> Point:
    return Point(Record(rid), tuple(float(x) for x in vector), (), (), category, level)


def random_points(n, dims, rng, categories=None) -> list[Point]:
    categories = categories or [Category.CC]
    return [
        make_point(
            [rng.uniform(0, 100) for _ in range(dims)],
            rid=i,
            category=rng.choice(categories),
        )
        for i in range(n)
    ]


class TestDynamicInsert:
    def test_small_insert_and_validate(self):
        tree = RStarTree(2, max_entries=4)
        rng = random.Random(0)
        for p in random_points(30, 2, rng):
            tree.insert(p)
        tree.validate()
        assert len(tree) == 30
        assert len(list(tree.points())) == 30

    def test_larger_insert_multiple_levels(self):
        tree = RStarTree(3, max_entries=6)
        rng = random.Random(1)
        pts = random_points(400, 3, rng)
        tree.extend(pts)
        tree.validate()
        assert tree.height >= 3
        assert sorted(p.rid for p in tree.points()) == list(range(400))

    def test_no_reinsert_variant(self):
        tree = RStarTree(2, max_entries=5, reinsert=False)
        rng = random.Random(2)
        tree.extend(random_points(200, 2, rng))
        tree.validate()
        assert len(tree) == 200

    def test_duplicate_points_allowed(self):
        tree = RStarTree(2, max_entries=4)
        for i in range(20):
            tree.insert(make_point([1.0, 2.0], rid=i))
        tree.validate()
        assert len(tree) == 20

    def test_dimension_mismatch(self):
        tree = RStarTree(2)
        with pytest.raises(RTreeError):
            tree.insert(make_point([1.0, 2.0, 3.0]))

    def test_bad_params(self):
        with pytest.raises(RTreeError):
            RStarTree(0)
        with pytest.raises(RTreeError):
            RStarTree(2, max_entries=3)
        with pytest.raises(RTreeError):
            RStarTree(2, min_fill=0.9)

    def test_search_matches_linear_scan(self):
        rng = random.Random(3)
        pts = random_points(300, 2, rng)
        tree = RStarTree(2, max_entries=8)
        tree.extend(pts)
        mins, maxs = (20.0, 30.0), (70.0, 60.0)
        expected = sorted(
            p.rid
            for p in pts
            if all(lo <= x <= hi for lo, hi, x in zip(mins, maxs, p.vector))
        )
        got = sorted(p.rid for p in tree.search(mins, maxs))
        assert got == expected

    def test_degenerate_point_search(self):
        """Regression: a zero-volume query box must still descend into
        children (volume-overlap tests fail for point probes)."""
        pts = [make_point([5.0, 5.0], rid=i) for i in range(3)]
        pts += [make_point([1.0, 9.0], rid="other")]
        tree = RStarTree(2, max_entries=4)
        tree.extend(pts + random_points(80, 2, random.Random(10)))
        got = sorted(str(p.rid) for p in tree.search((5.0, 5.0), (5.0, 5.0)))
        assert got == ["0", "1", "2"]

    def test_node_access_counter_increases(self):
        rng = random.Random(4)
        tree = RStarTree(2, max_entries=8)
        tree.extend(random_points(100, 2, rng))
        before = tree.stats.node_accesses
        tree.search((0.0, 0.0), (100.0, 100.0))
        assert tree.stats.node_accesses > before


class TestBulkLoad:
    def test_str_contains_all_points(self):
        rng = random.Random(5)
        pts = random_points(500, 4, rng)
        tree = str_bulk_load(pts, 4, max_entries=10)
        tree.validate()
        assert len(tree) == 500
        assert sorted(p.rid for p in tree.points()) == list(range(500))

    def test_str_empty(self):
        tree = str_bulk_load([], 2)
        tree.validate()
        assert len(tree) == 0

    def test_str_single_point(self):
        tree = str_bulk_load([make_point([1, 2])], 2)
        tree.validate()
        assert len(tree) == 1

    def test_str_search(self):
        rng = random.Random(6)
        pts = random_points(400, 2, rng)
        tree = str_bulk_load(pts, 2, max_entries=16)
        expected = sorted(
            p.rid for p in pts if 10 <= p.vector[0] <= 50 and 5 <= p.vector[1] <= 95
        )
        got = sorted(p.rid for p in tree.search((10.0, 5.0), (50.0, 95.0)))
        assert got == expected

    def test_str_height_reasonable(self):
        rng = random.Random(7)
        pts = random_points(1000, 2, rng)
        tree = str_bulk_load(pts, 2, max_entries=50)
        assert tree.height <= 3

    def test_str_dimension_mismatch(self):
        with pytest.raises(RTreeError):
            str_bulk_load([make_point([1, 2, 3])], 2)

    def test_str_bad_fill(self):
        with pytest.raises(RTreeError):
            str_bulk_load([make_point([1, 2])], 2, fill=0.0)


class TestCategoryBits:
    def test_leaf_bits_aggregate(self):
        pts = [
            make_point([1, 1], 0, Category.CC),
            make_point([2, 2], 1, Category.PP),
        ]
        node = Node(leaf=True, entries=pts)
        assert not node.covered_all
        assert not node.covering_all

    def test_pure_leaf_bits(self):
        node = Node(leaf=True, entries=[make_point([1, 1], 0, Category.CP)])
        assert node.covered_all and not node.covering_all

    def test_possible_categories_conservative(self):
        node = Node(leaf=True, entries=[make_point([1, 1], 0, Category.CP)])
        assert node.possible_categories() == frozenset({Category.CC, Category.CP})
        pure = Node(leaf=True, entries=[make_point([1, 1], 0, Category.CC)])
        assert pure.possible_categories() == frozenset({Category.CC})

    def test_bits_propagate_through_tree(self):
        rng = random.Random(8)
        pts = random_points(300, 2, rng, categories=[Category.PP])
        tree = str_bulk_load(pts, 2, max_entries=8)
        assert not tree.root.covered_all
        assert not tree.root.covering_all
        tree.validate()  # validates bit consistency at every node

    def test_bits_maintained_by_dynamic_insert(self):
        rng = random.Random(9)
        tree = RStarTree(2, max_entries=5)
        tree.extend(random_points(150, 2, rng, categories=list(Category)))
        tree.validate()


class TestHeap:
    def test_entry_key_point_vs_node(self):
        p = make_point([3, 4])
        assert entry_key(p) == 7
        node = Node(leaf=True, entries=[p])
        assert entry_key(node) == 7

    def test_heap_orders_by_key(self):
        heap = EntryHeap()
        pts = [make_point([x, 0], rid=x) for x in (5, 1, 3, 2, 4)]
        for p in pts:
            heap.push(p)
        popped = [heap.pop().rid for _ in range(len(pts))]
        assert popped == [1, 2, 3, 4, 5]

    def test_heap_stable_on_ties(self):
        heap = EntryHeap()
        a, b = make_point([1, 1], rid="a"), make_point([2, 0], rid="b")
        heap.push(a)
        heap.push(b)
        assert heap.pop().rid == "a"

    def test_heap_counts_stats(self):
        heap = EntryHeap()
        heap.push(make_point([1, 1]))
        heap.pop()
        assert heap.stats.heap_pushes == 1
        assert heap.stats.heap_pops == 1

    def test_heap_len_bool(self):
        heap = EntryHeap()
        assert not heap
        heap.push(make_point([0, 0]))
        assert len(heap) == 1 and heap


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 120),
    max_entries=st.integers(4, 12),
)
def test_dynamic_tree_invariants_property(seed, n, max_entries):
    rng = random.Random(seed)
    tree = RStarTree(2, max_entries=max_entries)
    tree.extend(random_points(n, 2, rng, categories=list(Category)))
    tree.validate()
    assert len(list(tree.points())) == n


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(0, 300))
def test_bulk_tree_invariants_property(seed, n):
    rng = random.Random(seed)
    pts = random_points(n, 3, rng, categories=list(Category))
    tree = str_bulk_load(pts, 3, max_entries=8)
    tree.validate()
    assert len(list(tree.points())) == n


def test_indexerror_alias_still_works():
    """``IndexError_`` was renamed ``RTreeError``; the alias is kept."""
    from repro.exceptions import IndexError_

    assert IndexError_ is RTreeError
