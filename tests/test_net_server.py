"""End-to-end tests of the asyncio network front-end.

Each test runs a real :class:`~repro.serving.server.SkylineServer`
behind a :class:`~repro.net.netserver.NetworkFrontend` on an ephemeral
port and drives it with the asyncio client over actual TCP.  Every wait
is bounded (``asyncio.wait_for``), so a hang is a test failure, not a
stuck suite.
"""

from __future__ import annotations

import asyncio
import random
import struct
from types import SimpleNamespace

import pytest

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.engine import SkylineEngine
from repro.exceptions import RemoteQueryError
from repro.net.client import SkylineClient
from repro.net.netserver import NetworkConfig, NetworkFrontend, _QueryStream
from repro.net.protocol import PROTOCOL_VERSION, read_frame, write_frame
from repro.posets.builder import diamond
from repro.resilience import execute
from repro.resilience.chaos import FaultInjector, inject_kernel_faults
from repro.serving import QueryRequest, SkylineServer
from repro.serving.metrics import ServerMetrics
from repro.serving.overload import OverloadConfig, RetryPolicy

TIMEOUT = 30.0


def _mixed_engine(kernel: str = "python", n: int = 150) -> SkylineEngine:
    rng = random.Random(23)
    poset = diamond()
    schema = Schema(
        [
            NumericAttribute("a", "min"),
            NumericAttribute("b", "min"),
            PosetAttribute.set_valued("p", poset),
        ]
    )
    records = [
        Record(
            i,
            (rng.randint(1, 40), rng.randint(1, 40)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel=kernel)


def _wide_engine(n: int = 400, dims: int = 5) -> SkylineEngine:
    """Higher-dimensional workload: a large skyline and slower queries
    (the 2-d mixed engine's skyline is <10 points and finishes in
    milliseconds -- useless for streaming/cancellation tests)."""
    rng = random.Random(23)
    poset = diamond()
    schema = Schema(
        [NumericAttribute(f"d{i}", "min") for i in range(dims)]
        + [PosetAttribute.set_valued("p", poset)]
    )
    records = [
        Record(
            i,
            tuple(rng.randint(1, 100) for _ in range(dims)),
            (poset.value(rng.randrange(len(poset))),),
        )
        for i in range(n)
    ]
    return SkylineEngine(schema, records, kernel="python")


def _fake_point(i: int):
    return SimpleNamespace(
        record=SimpleNamespace(rid=i, totals=(i,), partials=())
    )


class _Frontend:
    """Async context manager: server + frontend on an ephemeral port."""

    def __init__(self, server: SkylineServer, config: NetworkConfig | None = None):
        self.server = server
        self.frontend = NetworkFrontend(server, config)

    async def __aenter__(self):
        self.host, self.port = await self.frontend.start()
        return self

    async def __aexit__(self, *exc):
        await self.frontend.close()
        self.server.close()

    async def connect(self) -> SkylineClient:
        return await SkylineClient.connect(self.host, self.port)


def _serve(engine, config=None, **server_kwargs) -> _Frontend:
    server_kwargs.setdefault("workers", 2)
    return _Frontend(SkylineServer(engine, **server_kwargs), config)


async def _wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(0.02)


class TestProgressiveDelivery:
    def test_points_frames_arrive_before_done_for_multi_stratum_query(self):
        engine = _wide_engine(n=400)
        reference = execute(engine.dataset, "sdc+").points

        async def main():
            # Small frame batches force genuinely progressive framing.
            async with _serve(
                engine, NetworkConfig(points_per_frame=8)
            ) as env:
                client = await env.connect()
                try:
                    stream = await client.query(algorithm="sdc+")
                    kinds = []
                    async for kind, _payload in stream.events():
                        kinds.append(kind)
                    result = await asyncio.wait_for(
                        stream.result(), timeout=TIMEOUT
                    )
                finally:
                    await client.close()
                return kinds, result

        kinds, result = asyncio.run(main())
        assert result.complete
        # At least one POINTS frame strictly precedes DONE, and the
        # stratified answer arrives across multiple frames.
        assert "points" in kinds
        assert result.point_frames >= 2
        assert result.time_to_first_point is not None
        assert result.time_to_first_point <= result.time_to_done
        assert [p["rid"] for p in result.points] == [
            p.record.rid for p in reference
        ]

    def test_remote_result_matches_local_execution(self):
        engine = _mixed_engine(n=150)
        reference = execute(engine.dataset, "bnl+").points

        async def main():
            async with _serve(engine) as env:
                client = await env.connect()
                try:
                    return await asyncio.wait_for(
                        client.execute(algorithm="bnl+"), timeout=TIMEOUT
                    )
                finally:
                    await client.close()

        result = asyncio.run(main())
        assert result.complete
        assert [p["rid"] for p in result.points] == [
            p.record.rid for p in reference
        ]

    def test_cache_hit_streams_through_replay_with_cached_flag(self):
        engine = _mixed_engine(n=150)

        async def main():
            async with _serve(engine, cache=True, warm=False) as env:
                client = await env.connect()
                try:
                    first = await asyncio.wait_for(
                        client.execute(algorithm="sdc+"), timeout=TIMEOUT
                    )
                    second = await asyncio.wait_for(
                        client.execute(algorithm="sdc+"), timeout=TIMEOUT
                    )
                finally:
                    await client.close()
                return first, second

        first, second = asyncio.run(main())
        assert not first.cached
        assert second.cached
        assert second.point_frames >= 1
        # The cache stores the answer in canonical (not emission) order;
        # the hit must stream the same answer set.
        assert sorted(p["rid"] for p in second.points) == sorted(
            p["rid"] for p in first.points
        )


class TestCancellation:
    def test_cancel_frame_terminates_stream_with_cancelled_error(self):
        engine = _wide_engine(n=5000)

        async def main():
            async with _serve(engine, workers=1) as env:
                client = await env.connect()
                try:
                    blocker = await client.query(algorithm="bnl")
                    victim = await client.query(algorithm="bnl")
                    # Let the victim register server-side (it is queued
                    # behind the blocker on the single worker).
                    await asyncio.sleep(0.1)
                    await victim.cancel()
                    with pytest.raises(RemoteQueryError) as excinfo:
                        await asyncio.wait_for(
                            victim.result(), timeout=TIMEOUT
                        )
                    blocked = await asyncio.wait_for(
                        blocker.result(), timeout=TIMEOUT
                    )
                finally:
                    await client.close()
                return excinfo.value, blocked

        error, blocked = asyncio.run(main())
        assert error.code == "cancelled"
        assert blocked.complete  # the other stream is unaffected

    def test_disconnect_mid_stream_cancels_and_server_returns_idle(self):
        engine = _wide_engine(n=5000)

        async def main():
            async with _serve(engine, workers=1) as env:
                server = env.server
                client = await env.connect()
                await client.query(algorithm="bnl")
                await client.query(algorithm="bnl")
                await asyncio.sleep(0.1)  # both in flight server-side
                # Hard-abort the transport mid-stream: disconnect==cancel.
                client._writer.transport.abort()
                await client.close()
                await _wait_until(
                    lambda: server.metrics.in_flight == 0
                    and not server._inflight
                    and server.metrics.snapshot()["net"]["connections"][
                        "active"
                    ]
                    == 0
                )
                return server.metrics.snapshot()

        snapshot = asyncio.run(main())
        net = snapshot["net"]
        assert net["disconnect_cancellations"] >= 1
        assert snapshot["queue"]["in_flight"] == 0


class TestProtocolViolations:
    def test_malformed_frame_answered_with_typed_error_then_close(self):
        engine = _mixed_engine(n=60)

        async def main():
            async with _serve(engine) as env:
                reader, writer = await asyncio.open_connection(
                    env.host, env.port
                )
                try:
                    write_frame(
                        writer, {"type": "hello", "protocol": PROTOCOL_VERSION}
                    )
                    await writer.drain()
                    hello, _ = await asyncio.wait_for(
                        read_frame(reader), timeout=TIMEOUT
                    )
                    assert hello["type"] == "hello"
                    # A frame whose CRC does not match its payload.
                    body = b'{"type":"metrics"}'
                    writer.write(struct.pack("!II", len(body), 0) + body)
                    await writer.drain()
                    received = await asyncio.wait_for(
                        read_frame(reader), timeout=TIMEOUT
                    )
                    assert received is not None
                    error, _ = received
                    # ... and then the server closes the connection.
                    assert (
                        await asyncio.wait_for(
                            read_frame(reader), timeout=TIMEOUT
                        )
                        is None
                    )
                finally:
                    writer.close()
                return error, env.server.metrics.snapshot()["net"]

        error, net = asyncio.run(main())
        assert error["type"] == "error"
        assert error["code"] == "protocol"
        assert net["malformed_frames"] >= 1

    def test_handshake_version_mismatch_rejected(self):
        engine = _mixed_engine(n=60)

        async def main():
            async with _serve(engine) as env:
                reader, writer = await asyncio.open_connection(
                    env.host, env.port
                )
                try:
                    write_frame(writer, {"type": "hello", "protocol": 99})
                    await writer.drain()
                    received = await asyncio.wait_for(
                        read_frame(reader), timeout=TIMEOUT
                    )
                    assert received is not None
                    error, _ = received
                    assert (
                        await asyncio.wait_for(
                            read_frame(reader), timeout=TIMEOUT
                        )
                        is None
                    )
                finally:
                    writer.close()
                return error

        error = asyncio.run(main())
        assert error["code"] == "protocol"
        assert "protocol 1" in error["message"]

    def test_client_sending_server_only_frame_is_rejected(self):
        engine = _mixed_engine(n=60)

        async def main():
            async with _serve(engine) as env:
                reader, writer = await asyncio.open_connection(
                    env.host, env.port
                )
                try:
                    write_frame(
                        writer, {"type": "hello", "protocol": PROTOCOL_VERSION}
                    )
                    await writer.drain()
                    await asyncio.wait_for(read_frame(reader), timeout=TIMEOUT)
                    write_frame(
                        writer,
                        {"type": "points", "qid": 1, "seq": 0, "points": []},
                    )
                    await writer.drain()
                    error, _ = await asyncio.wait_for(
                        read_frame(reader), timeout=TIMEOUT
                    )
                finally:
                    writer.close()
                return error

        error = asyncio.run(main())
        assert error["code"] == "protocol"
        assert "must not send" in error["message"]

    def test_unknown_algorithm_surfaces_as_typed_serving_error(self):
        engine = _mixed_engine(n=60)

        async def main():
            async with _serve(engine) as env:
                client = await env.connect()
                try:
                    with pytest.raises(RemoteQueryError) as excinfo:
                        await asyncio.wait_for(
                            client.execute(algorithm="not-an-algorithm"),
                            timeout=TIMEOUT,
                        )
                finally:
                    await client.close()
                return excinfo.value

        error = asyncio.run(main())
        assert error.code == "serving"


class TestRateLimiting:
    def test_bucket_exhaustion_returns_rate_limited_with_retry_after(self):
        engine = _mixed_engine(n=150)
        # A near-zero refill rate: the burst covers the first priced
        # queries, then the bucket runs dry and stays dry.
        config = NetworkConfig(rate=0.01, burst=8.0)

        async def main():
            async with _serve(engine, config) as env:
                client = await env.connect()
                successes = 0
                try:
                    with pytest.raises(RemoteQueryError) as excinfo:
                        for _ in range(20):
                            await asyncio.wait_for(
                                client.execute(algorithm="sdc+"),
                                timeout=TIMEOUT,
                            )
                            successes += 1
                finally:
                    await client.close()
                return successes, excinfo.value, env.server.metrics.snapshot()

        successes, error, snapshot = asyncio.run(main())
        assert successes >= 1  # the burst admitted at least one query
        assert error.code == "rate-limited"
        assert error.detail["cost"] > 1.0
        assert error.detail["retry_after"] > 0.0
        assert snapshot["net"]["rate_limited"] >= 1


class TestSlowConsumer:
    """Deterministic pause/shed unit tests of the per-query stream.

    Real sockets absorb small result sets in kernel buffers, so the
    bounds are exercised directly against a fake connection; the e2e
    integration path is covered by the bench's chaos pass.
    """

    @staticmethod
    def _fake_conn(config: NetworkConfig):
        sent = []
        metrics = ServerMetrics()

        async def send(frame):
            sent.append(frame)

        conn = SimpleNamespace(
            loop=None,
            frontend=SimpleNamespace(config=config, metrics=metrics),
            streams={},
            send=send,
        )
        return conn, sent, metrics

    def test_soft_bound_pauses_and_drain_resumes(self):
        config = NetworkConfig(pending_soft=5, pending_hard=100,
                               points_per_frame=512)
        conn, sent, metrics = self._fake_conn(config)

        async def main():
            stream = _QueryStream(
                conn,
                qid=1,
                handle=SimpleNamespace(
                    _error=None,
                    _result=SimpleNamespace(
                        complete=True,
                        exhausted_reason=None,
                        elapsed=0.0,
                        points=[],
                        cached=False,
                        fallback=False,
                    ),
                    outcome="completed",
                    cancel=lambda: True,
                ),
            )
            conn.streams[1] = stream
            stream._on_event(
                "points", [_fake_point(i) for i in range(6)]
            )  # > soft bound
            assert stream.paused
            assert metrics.net_backpressure_pauses == 1
            # Draining below the soft bound releases the pause.
            pump = asyncio.ensure_future(stream.pump())
            await _wait_until(lambda: not stream.pending, timeout=5.0)
            assert not stream.paused
            stream._on_finished()
            await asyncio.wait_for(pump, timeout=5.0)

        asyncio.run(main())
        assert [f["type"] for f in sent] == ["points", "done"] or [
            f["type"] for f in sent
        ] == ["points", "error"]

    def test_hard_bound_sheds_cancels_and_sends_typed_error(self):
        config = NetworkConfig(pending_soft=5, pending_hard=10)
        conn, sent, metrics = self._fake_conn(config)
        cancelled = []

        async def main():
            stream = _QueryStream(
                conn,
                qid=7,
                handle=SimpleNamespace(
                    _result=None, cancel=lambda: cancelled.append(True)
                ),
            )
            conn.streams[7] = stream
            batch = [_fake_point(i) for i in range(6)]
            stream._on_event("points", batch)   # pause
            stream._on_event("points", batch)   # 12 > hard: shed
            assert stream.shed
            assert stream.pending == []  # dropped, not buffered
            await asyncio.wait_for(stream.pump(), timeout=5.0)

        asyncio.run(main())
        assert cancelled  # the query's cancellation token was tripped
        assert metrics.net_slow_consumer_sheds == 1
        assert len(sent) == 1
        assert sent[0]["type"] == "error"
        assert sent[0]["code"] == "slow-consumer"
        assert sent[0]["qid"] == 7
        # Later emissions for a shed stream are ignored, not buffered.
        assert conn.streams == {}

    def test_slow_but_reading_client_completes_without_hang(self):
        engine = _wide_engine(n=400)

        async def main():
            async with _serve(
                engine, NetworkConfig(points_per_frame=4, send_queue_frames=4)
            ) as env:
                client = await env.connect()
                try:
                    stream = await client.query(algorithm="sdc+")
                    batches = 0
                    async for _batch in stream:
                        batches += 1
                        await asyncio.sleep(0.005)  # slow consumer, reading
                    result = await asyncio.wait_for(
                        stream.result(), timeout=TIMEOUT
                    )
                finally:
                    await client.close()
                return batches, result

        batches, result = asyncio.run(main())
        assert result.complete
        assert batches >= 2


class TestRetryReset:
    def test_server_side_retry_sends_reset_before_reemission(self):
        engine = _wide_engine(n=1500)
        reference = execute(engine.dataset, "sdc+").points
        # One transient kernel fault mid-query (~40% through the ~48k
        # instrumented calls, so well after the stream subscribes): the
        # server retries and the wire stream retracts the prefix with a
        # typed RESET frame before re-emission.
        inject_kernel_faults(
            engine.dataset,
            FaultInjector(seed=5, fail_after=20_000, max_faults=1),
        )

        async def main():
            async with _serve(
                engine,
                workers=1,
                overload=OverloadConfig(
                    retry=RetryPolicy(
                        max_attempts=3, base_delay=0.01, max_delay=0.02, seed=5
                    ),
                    watchdog=False,
                ),
            ) as env:
                client = await env.connect()
                try:
                    result = await asyncio.wait_for(
                        client.execute(algorithm="sdc+"), timeout=TIMEOUT
                    )
                finally:
                    await client.close()
                return result, env.server.metrics

        result, metrics = asyncio.run(main())
        assert metrics.retries == 1
        assert result.complete
        assert result.resets >= 1
        assert metrics.net_resets_sent >= 1
        assert [p["rid"] for p in result.points] == [
            p.record.rid for p in reference
        ]


class TestMetricsFrame:
    def test_metrics_frame_returns_snapshot_with_net_section(self):
        engine = _mixed_engine(n=60)

        async def main():
            async with _serve(engine) as env:
                client = await env.connect()
                try:
                    await asyncio.wait_for(
                        client.execute(algorithm="sdc+"), timeout=TIMEOUT
                    )
                    return await asyncio.wait_for(
                        client.metrics(), timeout=TIMEOUT
                    )
                finally:
                    await client.close()

        snapshot = asyncio.run(main())
        net = snapshot["net"]
        assert net["connections"]["opened"] >= 1
        assert net["queries"] >= 1
        assert net["frames_in"] >= 2
        assert net["frames_out"] >= 2
        assert net["points_sent"] >= 1
        assert "time_to_first_point" in net
