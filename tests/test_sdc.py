"""Behavioural tests for SDC (Section 4.5) beyond plain agreement."""

from __future__ import annotations

import random

from conftest import brute_force_skyline, random_mixed_dataset, record_dominates
from repro.algorithms.base import get_algorithm
from repro.core.categories import Category
from repro.core.stats import ComparisonStats
from repro.transform.dataset import TransformedDataset


class TestProgressiveness:
    def test_covered_points_emitted_before_completion(self, small_dataset):
        """SDC must stream completely covered skyline points; the stream
        must therefore start with covered categories."""
        algo = get_algorithm("sdc")
        emitted = list(algo.run(small_dataset))
        covered_count = sum(
            1 for p in emitted if p.category.completely_covered
        )
        if covered_count:
            prefix = emitted[:covered_count]
            assert all(p.category.completely_covered for p in prefix)

    def test_emissions_are_definite_prefixes(self):
        """Every emitted point is a true skyline point already at emission
        time (never displaced later)."""
        rng = random.Random(42)
        schema, records = random_mixed_dataset(rng, n=80)
        d = TransformedDataset(schema, records)
        truth = set(brute_force_skyline(schema, records))
        for point in get_algorithm("sdc").run(d):
            assert point.record.rid in truth

    def test_non_progressive_variant_emits_all_at_end(self, small_dataset):
        """With progressive_output=False the covered points are no longer
        interleaved early -- but the answer set is identical."""
        a = sorted(
            p.record.rid
            for p in get_algorithm("sdc", progressive_output=False).run(small_dataset)
        )
        b = sorted(p.record.rid for p in get_algorithm("sdc").run(small_dataset))
        assert a == b


class TestComparisonSavings:
    def run_with_stats(self, workload, **options):
        d = TransformedDataset(workload.schema, workload.records)
        d.index  # build outside measurement
        stats_before = d.stats.snapshot()
        list(get_algorithm("sdc", **options).run(d))
        return d.stats.diff(stats_before)

    def test_m_first_reduces_native_set_compares(self, small_workload):
        optimized = self.run_with_stats(small_workload, optimize_comparisons=True)
        plain = self.run_with_stats(small_workload, optimize_comparisons=False)
        assert optimized["native_set"] < plain["native_set"]

    def test_sdc_fewer_set_compares_than_bbs_plus(self, small_workload):
        """The paper reports a 59% drop in actual set-valued comparisons
        vs BBS+; require a strict improvement."""
        d1 = TransformedDataset(small_workload.schema, small_workload.records)
        d1.index
        s1 = d1.stats.snapshot()
        list(get_algorithm("bbs+").run(d1))
        bbs_sets = d1.stats.diff(s1)["native_set"]
        sdc_sets = self.run_with_stats(small_workload)["native_set"]
        assert sdc_sets < bbs_sets

    def test_category_restriction_never_increases_m_compares(self, small_workload):
        restricted = self.run_with_stats(small_workload, restrict_categories=True)
        full = self.run_with_stats(small_workload, restrict_categories=False)
        assert (
            restricted["m_dominance_point"] + restricted["m_dominance_mbr"]
            <= full["m_dominance_point"] + full["m_dominance_mbr"]
        )


class TestInternals:
    def test_pp_never_compared_against_cc(self):
        """Lemma 4.1 consequence exercised: with restriction on, SDC must
        not report comparisons between (p,p) points and the (c,c) subset.
        We verify indirectly: a dataset whose points are all (c,c) or
        (p,p) yields zero native-set comparisons in UpdateSkylines when
        no (c,p)/(p,c) mediators exist."""
        # A tree poset: every value is (c,c); no native comparisons needed.
        rng = random.Random(1)
        from repro.posets.builder import random_tree
        from repro.core.record import Record
        from repro.core.schema import PosetAttribute, Schema

        poset = random_tree(20, rng=rng)
        schema = Schema([PosetAttribute.set_valued("p", poset)])
        records = [
            Record(i, (), (rng.randrange(len(poset)),)) for i in range(60)
        ]
        d = TransformedDataset(schema, records)
        d.index
        before = d.stats.snapshot()
        list(get_algorithm("sdc").run(d))
        delta = d.stats.diff(before)
        assert delta["native_set"] == 0  # tree encodings are exact

    def test_skyline_partition_matches_categories(self, small_dataset, small_truth):
        emitted = list(get_algorithm("sdc").run(small_dataset))
        assert sorted(p.record.rid for p in emitted) == small_truth
        for p in emitted:
            assert p.category in set(Category)
