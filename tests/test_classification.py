"""Unit and property tests for dominance classification (Section 4.5.1)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_poset
from repro.core.categories import Category
from repro.posets.builder import (
    PAPER_FIG4_SPANNING_EDGES,
    antichain,
    chain,
    paper_example_poset,
    random_tree,
)
from repro.posets.classification import DominanceClassification, classify
from repro.posets.spanning_tree import (
    SpanningForest,
    default_spanning_forest,
    random_spanning_forest,
)


def fig4_classification() -> DominanceClassification:
    poset = paper_example_poset()
    forest = SpanningForest.from_edge_choice(poset, PAPER_FIG4_SPANNING_EDGES)
    return DominanceClassification(forest)


class TestPaperExamples:
    def test_example_4_3_partially_covering(self):
        cls = fig4_classification()
        assert cls.partially_covering_values == frozenset("abcdfh")

    def test_example_4_3_partially_covered(self):
        cls = fig4_classification()
        assert cls.partially_covered_values == frozenset("fghij")

    def test_example_4_4_uncovered_levels(self):
        cls = fig4_classification()
        expected = dict.fromkeys("abcde", 0)
        expected.update(dict.fromkeys("fghj", 1))
        expected["i"] = 2
        for value, level in expected.items():
            assert cls.uncovered_level(value) == level, value

    def test_fig4_categories(self):
        cls = fig4_classification()
        assert cls.category("e") is Category.CC
        assert cls.category("a") is Category.CP
        assert cls.category("g") is Category.PC
        assert cls.category("f") is Category.PP


class TestDegenerateShapes:
    def test_chain_everything_completely_both(self):
        cls = classify(default_spanning_forest(chain("abcde")))
        assert not cls.partially_covered_values
        assert not cls.partially_covering_values
        assert cls.max_uncovered_level == 0

    def test_antichain_everything_completely_both(self):
        cls = classify(default_spanning_forest(antichain("abc")))
        assert not cls.partially_covered_values
        assert not cls.partially_covering_values

    def test_tree_everything_completely_both(self):
        p = random_tree(30, rng=random.Random(7))
        cls = classify(default_spanning_forest(p))
        assert not cls.partially_covered_values
        assert not cls.partially_covering_values

    def test_category_counts_sum(self, medium_poset):
        cls = classify(default_spanning_forest(medium_poset))
        assert sum(cls.category_counts().values()) == len(medium_poset)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_covered_iff_level_zero(seed):
    """L(v) == 0 exactly when v is completely covered (Eq. 1)."""
    rng = random.Random(seed)
    poset = random_poset(rng)
    cls = classify(random_spanning_forest(poset, rng))
    for i in range(len(poset)):
        assert (cls.uncovered_level_ix(i) == 0) == cls.is_completely_covered_ix(i)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_covered_definition_brute_force(seed):
    """Completely covered == every incoming DAG path lies in the forest.

    Brute force: enumerate all incoming paths by walking ancestors.
    """
    rng = random.Random(seed)
    poset = random_poset(rng, max_nodes=10)
    forest = random_spanning_forest(poset, rng)
    cls = classify(forest)

    def all_incoming_paths_in_forest(target: int) -> bool:
        # DFS over reversed edges, tracking whether any used edge is
        # outside the forest.
        stack = [(target, False)]
        while stack:
            node, dirty = stack.pop()
            if dirty:
                return False
            for parent in poset.parents_ix(node):
                stack.append((parent, not forest.contains_edge(parent, node)))
        return True

    for i in range(len(poset)):
        assert cls.is_completely_covered_ix(i) == all_incoming_paths_in_forest(i)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_covering_definition_brute_force(seed):
    """Completely covering == every outgoing DAG path lies in the forest."""
    rng = random.Random(seed)
    poset = random_poset(rng, max_nodes=10)
    forest = random_spanning_forest(poset, rng)
    cls = classify(forest)

    def all_outgoing_paths_in_forest(source: int) -> bool:
        stack = [(source, False)]
        while stack:
            node, dirty = stack.pop()
            if dirty:
                return False
            for child in poset.children_ix(node):
                stack.append((child, not forest.contains_edge(node, child)))
        return True

    for i in range(len(poset)):
        assert cls.is_completely_covering_ix(i) == all_outgoing_paths_in_forest(i)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_lemma_4_4_levels(seed):
    """Lemma 4.4: if v dominates w then L(v) <= L(w)."""
    rng = random.Random(seed)
    poset = random_poset(rng)
    cls = classify(random_spanning_forest(poset, rng))
    for i in range(len(poset)):
        for j in poset.descendants_ix(i):
            assert cls.uncovered_level_ix(i) <= cls.uncovered_level_ix(j)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_level_brute_force(seed):
    """L(v) equals the max count of non-forest edges over incoming paths."""
    rng = random.Random(seed)
    poset = random_poset(rng, max_nodes=9)
    forest = random_spanning_forest(poset, rng)
    cls = classify(forest)

    def max_dirty(target: int) -> int:
        best = 0
        stack = [(target, 0)]
        while stack:
            node, dirty = stack.pop()
            best = max(best, dirty)
            for parent in poset.parents_ix(node):
                cost = 0 if forest.contains_edge(parent, node) else 1
                stack.append((parent, dirty + cost))
        return best

    for i in range(len(poset)):
        assert cls.uncovered_level_ix(i) == max_dirty(i)
