"""A5: scaling sweep over data sizes (extends Fig. 12(a)).

Runs the default workload at a geometric ladder of sizes and records how
each algorithm's dominance-check total grows, checking the qualitative
expectations: work grows monotonically with n for every algorithm, the
BNL variants grow super-linearly (window pressure), and the stratified
algorithms keep their first answer effectively free at every size.
"""

from __future__ import annotations

import pathlib

import pytest

from conftest import RESULTS_DIR, bench_size
from repro.bench.sweep import format_sweep, run_sweep

LABELS = ["BNL", "BBS+", "SDC", "SDC+"]

_points = []


def _sizes() -> list[int]:
    base = max(400, bench_size() // 4)
    return [base, base * 2, base * 4]


def test_sweep(benchmark):
    benchmark.group = "A5: scaling sweep (default workload)"
    points = benchmark.pedantic(
        lambda: run_sweep("fig10a", _sizes(), labels=LABELS),
        rounds=1,
        iterations=1,
    )
    _points.extend(points)

    text = "A5 -- scaling sweep, total dominance checks\n\n" + format_sweep(points)
    RESULTS_DIR.mkdir(exist_ok=True)
    pathlib.Path(RESULTS_DIR / "scaling_sweep.txt").write_text(text + "\n")
    print()
    print(text)

    for label in LABELS:
        checks = [p.checks(label) for p in points]
        assert checks == sorted(checks), f"{label} work not monotone in n"

    # Stratified algorithms: first answer nearly free at every size.
    for point in points:
        for label in ("SDC", "SDC+"):
            assert point.runs[label].first_answer().dominance_checks < 1000

    # BNL grows super-linearly in checks (quadratic-ish window pressure):
    # quadrupling n should much more than quadruple its comparisons.
    small, _, large = points
    ratio = large.checks("BNL") / max(1, small.checks("BNL"))
    assert ratio > 4.0
