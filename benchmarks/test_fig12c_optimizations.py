"""Fig. 12(c): dominance-classification optimisation for SDC+
(plain vs MaxPC vs MinPC spanning trees).

Paper headline: SDC+-MaxPC improves only slightly on SDC+; SDC+-MinPC
improves significantly (fewer dominance comparisons involving the (c,c)
subset).  On this pure-Python substrate the effect is measured primarily
through comparison counts and the shift in category populations.
"""

from __future__ import annotations

import pytest

from conftest import bench_run, write_report
from repro.core.categories import Category

EXPERIMENT_ID = "fig12c"
LABELS = ("SDC+", "SDC+-MaxPC", "SDC+-MinPC")


@pytest.mark.parametrize("label", LABELS)
def test_algorithm(benchmark, setup, label):
    points = bench_run(benchmark, setup, label)
    assert points


def test_report_and_shape(benchmark, setup):
    benchmark.group = f"{setup.experiment.id}: figure regeneration"
    runs = benchmark.pedantic(lambda: write_report(setup), rounds=1, iterations=1)

    # The strategies must shift the classification in their defining
    # directions relative to each other.
    counts = {
        strategy: dataset.category_counts()
        for strategy, dataset in setup.datasets.items()
    }
    assert counts["minpc"][Category.PC] <= counts["maxpc"][Category.PC]
    assert counts["minpc"][Category.CC] >= counts["maxpc"][Category.CC]

    # MaxPC maximises m-dominance usage: it must beat MinPC (which
    # deliberately trades native comparisons for fewer (c,c) checks) on
    # expensive native comparisons and stay in the default's ballpark.
    assert (
        runs["SDC+-MaxPC"].final_delta["native_set"]
        <= runs["SDC+-MinPC"].final_delta["native_set"]
    )
    assert (
        runs["SDC+-MaxPC"].final_delta["native_set"]
        <= 1.25 * runs["SDC+"].final_delta["native_set"]
    )

    # All three remain fully progressive for the covered strata.
    for label in LABELS:
        assert runs[label].first_answer().dominance_checks < 1000
