"""Table 1: the experimental parameter grid.

Benchmarks the offline pipeline (workload generation, domain mapping,
index construction) at every parameter variation of Table 1 and records
the resulting dataset statistics, demonstrating that the full grid is
exercised end to end.
"""

from __future__ import annotations

import pathlib

import pytest

from conftest import RESULTS_DIR, bench_size
from repro.bench.harness import count_false_positives
from repro.transform.dataset import TransformedDataset
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

VARIATIONS = {
    "default (2 total, 1 partial)": WorkloadConfig.default,
    "1 totally-ordered attribute": lambda **kw: WorkloadConfig.default(
        num_total=1, **kw
    ),
    "4 totally-ordered attributes": WorkloadConfig.more_numeric,
    "2 partially-ordered attributes": WorkloadConfig.more_set_valued,
    "anti-correlated": WorkloadConfig.anti_correlated,
    "poset 1000 nodes": WorkloadConfig.large_poset,
    "poset height 13": WorkloadConfig.tall_poset,
}

_collected: dict[str, tuple[int, int, int]] = {}


@pytest.mark.parametrize("name", list(VARIATIONS))
def test_grid_point(benchmark, name):
    config = VARIATIONS[name](data_size=max(200, bench_size() // 4))
    benchmark.group = "Table 1: offline pipeline per parameter variation"

    def build():
        workload = generate_workload(config)
        dataset = TransformedDataset(workload.schema, workload.records)
        dataset.index  # force index construction
        return dataset

    dataset = benchmark.pedantic(build, rounds=1, iterations=1)
    skyline_size, false_positives = count_false_positives(dataset)
    assert skyline_size >= 1
    _collected[name] = (len(dataset), skyline_size, false_positives)


def test_write_grid_report(benchmark):
    benchmark.group = "Table 1: offline pipeline per parameter variation"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = ["Table 1 parameter grid -- dataset statistics", ""]
    lines.append(f"{'variation':38} {'records':>8} {'skyline':>8} {'false+':>8}")
    for name, (n, sky, fp) in _collected.items():
        lines.append(f"{name:38} {n:8d} {sky:8d} {fp:8d}")
    text = "\n".join(lines) + "\n"
    pathlib.Path(RESULTS_DIR / "table1.txt").write_text(text)
    print()
    print(text)
    assert len(_collected) == len(VARIATIONS)
