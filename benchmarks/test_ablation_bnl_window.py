"""Ablation: BNL window size (experiment id ``A3``).

Börzsönyi's BNL degrades gracefully as its memory window shrinks: smaller
windows overflow more records to the temporary file and need more passes.
This ablation sweeps the window from far-too-small to effectively
unbounded on the default workload.  The instructive (and correct) result
is that smaller windows perform *fewer* in-memory dominance comparisons
-- each incoming record meets a smaller window -- while paying in extra
passes over the overflow file, the disk I/O cost that the paper's
500K-record setting makes dominant but that an in-memory reproduction
does not observe.  The answers are identical for every window size.
"""

from __future__ import annotations

import pathlib

import pytest

from conftest import RESULTS_DIR, bench_size
from repro.algorithms.base import get_algorithm
from repro.bench.experiments import get_experiment
from repro.bench.harness import run_progressive
from repro.transform.dataset import TransformedDataset
from repro.workloads.generator import generate_workload

WINDOWS = (16, 64, 256, 1024, 10**9)

_results: dict[int, object] = {}


@pytest.fixture(scope="module")
def dataset() -> TransformedDataset:
    workload = generate_workload(get_experiment("fig10a").config(bench_size()))
    return TransformedDataset(workload.schema, workload.records)


@pytest.mark.parametrize("window", WINDOWS)
def test_window(benchmark, dataset, window):
    benchmark.group = "A3: BNL window-size ablation"
    run = benchmark.pedantic(
        lambda: run_progressive(dataset, "bnl", window_size=window),
        rounds=1,
        iterations=1,
    )
    _results[window] = run
    assert run.skyline_size > 0


def test_report_and_shape(benchmark, dataset):
    benchmark.group = "A3: BNL window-size ablation"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for window in WINDOWS:
        if window not in _results:
            _results[window] = run_progressive(dataset, "bnl", window_size=window)

    sizes = {run.skyline_size for run in _results.values()}
    assert len(sizes) == 1  # window size never changes the answer

    def checks(run):
        d = run.final_delta
        return d["m_dominance_point"] + d["native_set"] + d["native_numeric"]

    lines = [
        "A3 -- BNL window-size ablation (default workload)",
        f"records={len(dataset.records)}  skyline={sizes.pop()}",
        "",
        f"{'window':>10} {'total ms':>10} {'checks':>12} {'window inserts':>15}",
    ]
    for window in WINDOWS:
        run = _results[window]
        label = "unbounded" if window >= 10**9 else str(window)
        lines.append(
            f"{label:>10} {run.total_elapsed * 1000:9.1f}m "
            f"{checks(run):12d} {run.final_delta['window_inserts']:15d}"
        )
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    pathlib.Path(RESULTS_DIR / "bnl_window.txt").write_text(text)
    print()
    print(text)

    # The unbounded window needs exactly one pass over the input;
    # cramped windows overflow into extra passes (tuples re-scanned).
    n = len(dataset.records)
    scans = {w: _results[w].final_delta["tuples_scanned"] for w in WINDOWS}
    assert scans[10**9] == n
    assert scans[WINDOWS[0]] > n
    # Window inserts roughly grow with the window size (tiny wobbles are
    # possible: overflowed records re-attempt insertion next pass).
    inserts = [_results[w].final_delta["window_inserts"] for w in WINDOWS]
    assert inserts[0] <= inserts[-1]
