"""Shared machinery for the per-figure benchmark drivers.

Every ``test_fig*.py`` module declares ``EXPERIMENT_ID``; the fixtures
here generate its workload once per module (at ``REPRO_BENCH_N`` records,
default 2500 -- the paper's 500K scaled down for the pure-Python
substrate, see DESIGN.md), build the per-strategy transformed datasets
and indexes up front (the paper treats index construction as offline),
and benchmark each algorithm's full run exactly once.

Each module's report test regenerates the figure as a plain-text
milestone table (time and dominance checks to output the first answer
and each 20% of the answers) under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.algorithms.base import get_algorithm
from repro.bench.experiments import Experiment, get_experiment
from repro.bench.harness import count_false_positives, prepare_dataset, run_progressive
from repro.bench.reporting import format_run_table, format_timelines
from repro.transform.dataset import TransformedDataset
from repro.workloads.generator import generate_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_size() -> int:
    """Benchmark record count (``REPRO_BENCH_N``, default 2500)."""
    return int(os.environ.get("REPRO_BENCH_N", "2500"))


class ExperimentSetup:
    """Workload + prepared datasets for one experiment module."""

    def __init__(self, experiment: Experiment) -> None:
        self.experiment = experiment
        self.config = experiment.config(bench_size())
        self.workload = generate_workload(self.config)
        self.datasets: dict[str, TransformedDataset] = {}
        for spec in experiment.lineup:
            if spec.strategy not in self.datasets:
                self.datasets[spec.strategy] = TransformedDataset(
                    self.workload.schema, self.workload.records, strategy=spec.strategy
                )
        for spec in experiment.lineup:
            prepare_dataset(
                self.datasets[spec.strategy],
                get_algorithm(spec.algorithm, **spec.options),
            )

    def spec(self, label: str):
        return next(s for s in self.experiment.lineup if s.label == label)

    def dataset(self, label: str) -> TransformedDataset:
        return self.datasets[self.spec(label).strategy]

    def algorithm(self, label: str):
        spec = self.spec(label)
        return get_algorithm(spec.algorithm, **spec.options)


@pytest.fixture(scope="module")
def setup(request) -> ExperimentSetup:
    return ExperimentSetup(get_experiment(request.module.EXPERIMENT_ID))


def bench_run(benchmark, setup: ExperimentSetup, label: str):
    """Benchmark one full algorithm run (single round: runs are seconds-
    scale and deterministic in comparison counts)."""
    algo = setup.algorithm(label)
    dataset = setup.dataset(label)
    benchmark.group = f"{setup.experiment.id}: {setup.experiment.title}"
    points = benchmark.pedantic(
        lambda: list(algo.run(dataset)), rounds=1, iterations=1
    )
    assert len(points) == len({p.record.rid for p in points})
    return points


def write_report(setup: ExperimentSetup) -> dict:
    """Run every curve instrumented, verify agreement, write the tables."""
    runs = {}
    reference_rids = None
    for spec in setup.experiment.lineup:
        run = run_progressive(
            setup.datasets[spec.strategy], spec.algorithm, **spec.options
        )
        runs[spec.label] = run
        if reference_rids is None:
            reference_rids = run.rids
        assert run.rids == reference_rids, f"{spec.label} disagrees"

    skyline_size, false_positives = count_false_positives(
        next(iter(setup.datasets.values()))
    )
    assert skyline_size == len(reference_rids)

    header = (
        f"{setup.experiment.paper_ref} -- {setup.experiment.title}\n"
        f"records={len(setup.workload.records)}  skyline={skyline_size}  "
        f"false_positives={false_positives}\n"
        f"paper: {setup.experiment.paper_notes}\n"
    )
    body = (
        format_run_table(runs, "time", "time-to-output milestones (ms)")
        + "\n\n"
        + format_run_table(runs, "checks", "dominance-check milestones")
        + "\n\n"
        + format_timelines(runs)
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{setup.experiment.id}.txt"
    path.write_text(header + "\n" + body + "\n")

    # Machine-readable companion for plotting tools.
    import json

    from repro.bench.experiments import ExperimentResult

    result = ExperimentResult(
        setup.experiment,
        len(setup.workload.records),
        runs,
        skyline_size,
        false_positives,
        next(iter(setup.datasets.values())).category_counts(),
        next(iter(setup.datasets.values())).stratification.num_strata,
    )
    (RESULTS_DIR / f"{setup.experiment.id}.json").write_text(
        json.dumps(result.to_dict(), indent=2)
    )

    print()
    print(header)
    print(body)
    return runs
