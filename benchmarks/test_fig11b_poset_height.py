"""Fig. 11(b): tall (13-level), relatively sparse poset.

Paper headline: deeper posets mean larger set-valued representations, so
every original-domain comparison gets costlier -- BNL and BNL+ are hit
hardest; SDC+ needed 25 strata.
"""

from __future__ import annotations

import pytest

from conftest import bench_run, write_report

EXPERIMENT_ID = "fig11b"
LABELS = ("BNL", "BNL+", "BBS+", "SDC", "SDC+")


@pytest.mark.parametrize("label", LABELS)
def test_algorithm(benchmark, setup, label):
    points = bench_run(benchmark, setup, label)
    assert points


def test_report_and_shape(benchmark, setup):
    benchmark.group = f"{setup.experiment.id}: figure regeneration"
    runs = benchmark.pedantic(lambda: write_report(setup), rounds=1, iterations=1)

    # The tall poset's sets are larger than the default workload's.
    attr = setup.workload.schema.partial_attrs[0]
    assert attr.set_domain.average_set_size > 4.0

    # More strata than the trivial two covered ones.
    dataset = next(iter(setup.datasets.values()))
    assert dataset.stratification.num_strata > 2

    # BNL does by far the most expensive native set comparisons.
    assert (
        runs["BNL"].final_delta["native_set"]
        > runs["SDC"].final_delta["native_set"]
    )
    assert (
        runs["BNL"].final_delta["native_set"]
        > runs["BBS+"].final_delta["native_set"]
    )
