"""Fig. 12(b): anti-correlated totally-ordered attributes.

Paper headline: anti-correlation inflates the skyline (898 answers vs 662
independent at 500K), raising every algorithm's runtime while the
relative order stays the same.
"""

from __future__ import annotations

import pytest

from conftest import bench_run, bench_size, write_report
from repro.bench.experiments import get_experiment
from repro.bench.harness import count_false_positives
from repro.transform.dataset import TransformedDataset
from repro.workloads.generator import generate_workload

EXPERIMENT_ID = "fig12b"
LABELS = ("BNL", "BNL+", "BBS+", "SDC", "SDC+")


@pytest.mark.parametrize("label", LABELS)
def test_algorithm(benchmark, setup, label):
    points = bench_run(benchmark, setup, label)
    assert points


def test_report_and_shape(benchmark, setup):
    benchmark.group = f"{setup.experiment.id}: figure regeneration"
    runs = benchmark.pedantic(lambda: write_report(setup), rounds=1, iterations=1)

    # More answers than the independent default at the same size.
    default_cfg = get_experiment("fig10a").config(bench_size())
    default_wl = generate_workload(default_cfg)
    default_sky, _ = count_false_positives(
        TransformedDataset(default_wl.schema, default_wl.records)
    )
    assert runs["SDC+"].skyline_size > default_sky

    # Relative order preserved: stratified algorithms stay progressive.
    bbs_first = runs["BBS+"].first_answer().dominance_checks
    assert runs["SDC"].first_answer().dominance_checks < bbs_first / 10
    assert runs["SDC+"].first_answer().dominance_checks < bbs_first / 10
