"""Section 5.1 prose statistics (experiment id ``A2`` in DESIGN.md).

Regenerates the quantities the paper reports in the running text of the
performance study rather than in the figures: skyline and false-positive
counts per workload, the category distribution of the skyline (the paper:
"80% of the skyline points belong to S(c,p)"), and the reduction in
actual set-valued comparisons of SDC vs BBS+ (paper: 59%) and SDC+ vs SDC
(paper: 30% fewer set comparisons).
"""

from __future__ import annotations

import pathlib

from conftest import RESULTS_DIR, bench_size
from repro.bench.experiments import get_experiment
from repro.bench.harness import count_false_positives, run_progressive
from repro.core.categories import Category
from repro.transform.dataset import TransformedDataset
from repro.workloads.generator import generate_workload

EXPERIMENT_ID = "fig10a"  # statistics are quoted for the default workload


def test_prose_statistics(benchmark):
    experiment = get_experiment(EXPERIMENT_ID)
    workload = generate_workload(experiment.config(bench_size()))
    dataset = TransformedDataset(workload.schema, workload.records)
    benchmark.group = "A2: Section 5.1 prose statistics"

    skyline_size, false_positives = benchmark.pedantic(
        lambda: count_false_positives(dataset), rounds=1, iterations=1
    )
    assert skyline_size > 0
    assert false_positives > 0  # non-hierarchical posets must create some

    bbs = run_progressive(dataset, "bbs+")
    sdc = run_progressive(dataset, "sdc")
    sdc_plus = run_progressive(dataset, "sdc+")
    assert bbs.rids == sdc.rids == sdc_plus.rids

    skyline_categories = {cat: 0 for cat in Category}
    for p in sdc.points:
        skyline_categories[p.category] += 1
    covered_share = (
        skyline_categories[Category.CP] + skyline_categories[Category.CC]
    ) / skyline_size

    sdc_drop = 1 - sdc.final_delta["native_set"] / max(
        1, bbs.final_delta["native_set"]
    )
    plus_drop = 1 - sdc_plus.final_delta["native_set"] / max(
        1, sdc.final_delta["native_set"]
    )

    lines = [
        "A2 -- Section 5.1 prose statistics (default workload)",
        f"records                 {len(workload.records)}",
        f"skyline points          {skyline_size}   (paper @500K: 662)",
        f"false positives         {false_positives}   (paper @500K: 561)",
        "skyline by category     "
        + ", ".join(f"{cat}:{n}" for cat, n in skyline_categories.items()),
        f"covered skyline share   {covered_share:.0%}   (paper: ~80% in S(c,p))",
        f"SDC set-compare drop    {sdc_drop:.0%} vs BBS+   (paper: 59%)",
        f"SDC+ set-compare drop   {plus_drop:.0%} vs SDC    (paper: 30%)",
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    pathlib.Path(RESULTS_DIR / "stats_counters.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print()
    print("\n".join(lines))

    # Shape assertions: the drops exist and the covered categories carry
    # the majority of the skyline.
    assert sdc_drop > 0
    assert plus_drop >= 0
    assert covered_share > 0.3
