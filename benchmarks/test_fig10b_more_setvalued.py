"""Fig. 10(b): one more set-valued attribute (2 numeric + 2 set-valued).

Paper headline: the extra poset attribute inflates the skyline sharply
(9203 points at 500K records); relative algorithm order is unchanged, but
SDC's progressiveness degrades as more answers fall into the partially
covered subsets that cannot be emitted early.
"""

from __future__ import annotations

import pytest

from conftest import bench_run, bench_size, write_report
from repro.bench.experiments import get_experiment
from repro.workloads.generator import generate_workload

EXPERIMENT_ID = "fig10b"
LABELS = ("BNL", "BNL+", "BBS+", "SDC", "SDC+")


@pytest.mark.parametrize("label", LABELS)
def test_algorithm(benchmark, setup, label):
    points = bench_run(benchmark, setup, label)
    assert points


def test_report_and_shape(benchmark, setup):
    benchmark.group = f"{setup.experiment.id}: figure regeneration"
    runs = benchmark.pedantic(lambda: write_report(setup), rounds=1, iterations=1)

    # The added set-valued attribute must grow the skyline relative to
    # the default workload at the same size.
    default_cfg = get_experiment("fig10a").config(bench_size())
    from repro.bench.harness import count_false_positives
    from repro.transform.dataset import TransformedDataset

    default_wl = generate_workload(default_cfg)
    default_sky, _ = count_false_positives(
        TransformedDataset(default_wl.schema, default_wl.records)
    )
    assert runs["SDC+"].skyline_size > default_sky

    # First-answer progressiveness of the stratified algorithms survives
    # the extra attribute.
    bbs_first = runs["BBS+"].first_answer().dominance_checks
    assert runs["SDC+"].first_answer().dominance_checks < bbs_first / 10
