"""Fig. 12(a): large dataset (the paper doubles 500K to 1M; here the
benchmark size is doubled the same way via ``size_factor=2``).

Paper headline: all runtimes grow with the data size, but SDC and SDC+
still deliver nearly all answers before the other algorithms finish.
"""

from __future__ import annotations

import pytest

from conftest import bench_run, write_report

EXPERIMENT_ID = "fig12a"
LABELS = ("BNL", "BNL+", "BBS+", "SDC", "SDC+")


@pytest.mark.parametrize("label", LABELS)
def test_algorithm(benchmark, setup, label):
    points = bench_run(benchmark, setup, label)
    assert points


def test_report_and_shape(benchmark, setup):
    benchmark.group = f"{setup.experiment.id}: figure regeneration"
    runs = benchmark.pedantic(lambda: write_report(setup), rounds=1, iterations=1)

    # SDC+ reaches 80% of its answers within the work BBS+ needs to emit
    # anything at all -- the "nearly all answers first" claim.
    bbs_first = runs["BBS+"].first_answer().dominance_checks
    sdc_plus_80 = [
        m for m in runs["SDC+"].milestones() if m.fraction == 0.8
    ][0].dominance_checks
    assert sdc_plus_80 < bbs_first

    assert runs["SDC+"].progressiveness() < runs["BBS+"].progressiveness()
