"""Python vs numpy dominance-backend benchmark (``kernel=`` option).

Two tiers over the Fig. 12(a) lineup (BNL, BNL+, BBS+, SDC, SDC+):

* **Smoke** (always on, CI): ~1K records.  Asserts exact parity of
  answer sequences and counter bundles and that the numpy backend's
  lineup-aggregate wall clock is no slower than the python backend's.
* **Full** (``REPRO_BENCH_KERNEL_FULL=1``): the fig12a large-dataset
  configuration (``REPRO_BENCH_KERNEL_N`` pre-scaling, default 50000 --
  doubled to 100K records by the experiment's ``size_factor=2``, the
  same doubling the paper applies to reach 1M).  Asserts the >=3x
  aggregate speedup documented in ``docs/performance.md``.

Both tiers record their measurements in
``benchmarks/results/kernel_backends.json`` (each tier updates its own
section, preserving the other's committed numbers).
"""

from __future__ import annotations

import json
import os

import pytest

from conftest import RESULTS_DIR
from repro.bench.experiments import get_experiment
from repro.bench.harness import run_progressive
from repro.transform.dataset import TransformedDataset
from repro.workloads.generator import generate_workload

EXPERIMENT_ID = "fig12a"
LINEUP = ("bnl", "bnl+", "bbs+", "sdc", "sdc+")
RESULT_PATH = RESULTS_DIR / "kernel_backends.json"


def measure_lineup(data_size: int, rounds: int) -> dict:
    """Best-of-``rounds`` lineup timings for both backends, with parity.

    Timings exclude workload generation and offline structure builds
    (indexes, strata trees, the batch kernel's relation memo), matching
    the paper's offline-index convention.
    """
    experiment = get_experiment(EXPERIMENT_ID)
    workload = generate_workload(experiment.config(data_size))
    section: dict = {
        "experiment": EXPERIMENT_ID,
        "records": len(workload.records),
        "rounds": rounds,
        "algorithms": {},
    }
    totals = {"python": 0.0, "numpy": 0.0}
    for name in LINEUP:
        row: dict = {}
        observed = {}
        for kernel in ("python", "numpy"):
            dataset = TransformedDataset(
                workload.schema, workload.records, kernel=kernel
            )
            runs = [run_progressive(dataset, name) for _ in range(rounds)]
            best = min(run.total_elapsed for run in runs)
            observed[kernel] = (
                [p.record.rid for p in runs[0].points],
                runs[0].final_delta,
            )
            row[f"{kernel}_s"] = round(best, 4)
            totals[kernel] += best
        assert observed["numpy"][0] == observed["python"][0], (
            f"{name}: backends disagree on the answer sequence"
        )
        assert observed["numpy"][1] == observed["python"][1], (
            f"{name}: backends disagree on comparison counters"
        )
        row["answers"] = len(observed["python"][0])
        row["speedup"] = round(row["python_s"] / row["numpy_s"], 2)
        section["algorithms"][name] = row
    section["python_s"] = round(totals["python"], 4)
    section["numpy_s"] = round(totals["numpy"], 4)
    section["aggregate_speedup"] = round(totals["python"] / totals["numpy"], 2)
    return section


def record(key: str, section: dict) -> None:
    """Merge one tier's measurements into the committed results file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data[key] = section
    RESULT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_smoke_numpy_not_slower():
    size = int(os.environ.get("REPRO_BENCH_KERNEL_N", "500"))
    section = measure_lineup(size, rounds=2)
    record("smoke", section)
    print()
    print(json.dumps(section, indent=2))
    assert section["aggregate_speedup"] >= 1.0, (
        "numpy backend slower than python on the lineup aggregate: "
        f"{section['aggregate_speedup']}x"
    )


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_KERNEL_FULL"),
    reason="full fig12a kernel benchmark (set REPRO_BENCH_KERNEL_FULL=1)",
)
def test_full_fig12a_speedup():
    size = int(os.environ.get("REPRO_BENCH_KERNEL_N", "50000"))
    section = measure_lineup(size, rounds=3)
    record("fig12a", section)
    print()
    print(json.dumps(section, indent=2))
    assert section["aggregate_speedup"] >= 3.0, (
        "fig12a large-dataset aggregate speedup regressed below 3x: "
        f"{section['aggregate_speedup']}x"
    )
