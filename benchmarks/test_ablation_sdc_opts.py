"""Section 5.3 ablation: the three SDC optimisations toggled one by one.

Paper headline (text only, no figure): optimising dominance comparisons
(m-dominance first) has the most impact -- up to 18x; minimising
dominance comparisons (category restriction) is marginal; the progressive
check buys progressiveness, not runtime.
"""

from __future__ import annotations

import pytest

from conftest import bench_run, write_report

EXPERIMENT_ID = "ablation-sdc"
LABELS = ("SDC-full", "SDC-no-restrict", "SDC-no-mfirst", "SDC-no-progressive")


@pytest.mark.parametrize("label", LABELS)
def test_algorithm(benchmark, setup, label):
    points = bench_run(benchmark, setup, label)
    assert points


def test_report_and_shape(benchmark, setup):
    benchmark.group = f"{setup.experiment.id}: figure regeneration"
    runs = benchmark.pedantic(lambda: write_report(setup), rounds=1, iterations=1)

    # Disabling m-first comparisons explodes the expensive native
    # comparisons -- the paper's dominant effect.
    assert (
        runs["SDC-no-mfirst"].final_delta["native_set"]
        > 3 * runs["SDC-full"].final_delta["native_set"]
    )

    # Disabling category restriction only adds (never removes) dominance
    # comparisons -- the paper's "marginal" optimisation.
    def m_checks(run):
        d = run.final_delta
        return d["m_dominance_point"] + d["m_dominance_mbr"]

    assert m_checks(runs["SDC-no-restrict"]) >= m_checks(runs["SDC-full"])

    # Disabling progressive output removes early emission entirely.
    assert (
        runs["SDC-no-progressive"].first_answer().dominance_checks
        >= runs["SDC-full"].first_answer().dominance_checks
    )
