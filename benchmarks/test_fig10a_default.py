"""Fig. 10(a): response time & progressiveness on the default workload
(2 numeric + 1 set-valued attribute, independent, 450-node/6-level poset).

Paper headline: SDC and SDC+ return first answers orders of magnitude
earlier than BNL/BNL+/BBS+; SDC+ is the most progressive; the index-based
algorithms beat the BNL variants overall; SDC cuts actual set-valued
comparisons sharply relative to BBS+ (59% in the paper).
"""

from __future__ import annotations

import pytest

from conftest import bench_run, write_report
from repro.bench.harness import run_progressive

EXPERIMENT_ID = "fig10a"
LABELS = ("BNL", "BNL+", "BBS+", "SDC", "SDC+")


@pytest.mark.parametrize("label", LABELS)
def test_algorithm(benchmark, setup, label):
    points = bench_run(benchmark, setup, label)
    assert points


def test_report_and_shape(benchmark, setup):
    benchmark.group = f"{setup.experiment.id}: figure regeneration"
    runs = benchmark.pedantic(lambda: write_report(setup), rounds=1, iterations=1)

    # Progressiveness: SDC/SDC+ deliver a first answer after far less
    # work than the blocking BBS+ (which emits only at the end).
    bbs_first = runs["BBS+"].first_answer().dominance_checks
    assert runs["SDC"].first_answer().dominance_checks < bbs_first / 10
    assert runs["SDC+"].first_answer().dominance_checks < bbs_first / 10

    # SDC+ is at least as progressive as SDC, which beats BBS+.
    assert runs["SDC+"].progressiveness() <= runs["SDC"].progressiveness() + 0.05
    assert runs["SDC"].progressiveness() < runs["BBS+"].progressiveness()

    # Expensive original-domain comparisons: SDC < BBS+ (paper: -59%),
    # SDC+ < SDC (paper: -30%).
    assert runs["SDC"].final_delta["native_set"] < runs["BBS+"].final_delta["native_set"]
    assert runs["SDC+"].final_delta["native_set"] <= runs["SDC"].final_delta["native_set"]

    # Index-based evaluation needs fewer dominance checks than BNL+.
    def checks(run):
        d = run.final_delta
        return d["m_dominance_point"] + d["native_set"] + d["native_numeric"]

    assert checks(runs["BBS+"]) < checks(runs["BNL+"])
    assert checks(runs["SDC"]) < checks(runs["BNL+"])
