"""A4: 2005-era cost-model projection of the default workload.

The substitution table in DESIGN.md notes that pure Python flattens both
the set-vs-integer comparison cost ratio and the I/O costs that shape the
paper's absolute numbers.  This benchmark re-weights the *measured*
operation counts of Fig. 10(a)'s five algorithms with the explicit
:class:`~repro.bench.costmodel.CostModel` (disk-resident R-trees behind a
shared LRU buffer pool, sequential scans for the BNL variants, set
comparisons an order of magnitude above integer comparisons) and checks
that the paper's orderings that depend on those ratios re-emerge:

* BNL+ beats BNL (the paper's default-workload ordering that raw Python
  wall-clock inverts), and
* every index-based algorithm beats both BNL variants on CPU cost.

The I/O column is reported but not asserted across algorithm families:
random page reads do not down-scale with the record count (an R-tree
stays a few levels deep) while sequential scans shrink linearly, so at
benchmark scale the absolute I/O balance between index traversals and
scans is not meaningful -- another facet of the substitution documented
in DESIGN.md.
"""

from __future__ import annotations

import pathlib

import pytest

from conftest import RESULTS_DIR, bench_size
from repro.bench.costmodel import BufferPool, CostModel
from repro.bench.experiments import get_experiment
from repro.bench.harness import run_progressive
from repro.transform.dataset import TransformedDataset
from repro.workloads.generator import generate_workload

EXPERIMENT_ID = "fig10a"
ALGORITHMS = ("bnl", "bnl+", "bbs+", "sdc", "sdc+")
#: Buffer pool of 32 pages -- a deliberately small fraction of the index
#: so random I/O stays visible, as with the paper's 256MB vs 500K records.
POOL_PAGES = 32

_runs: dict[str, object] = {}


@pytest.fixture(scope="module")
def dataset() -> TransformedDataset:
    workload = generate_workload(get_experiment(EXPERIMENT_ID).config(bench_size()))
    d = TransformedDataset(workload.schema, workload.records)
    d.attach_buffer_pool(BufferPool(POOL_PAGES))
    return d


@pytest.mark.parametrize("name", ALGORITHMS)
def test_algorithm(benchmark, dataset, name):
    benchmark.group = "A4: cost-model projection (default workload)"
    run = benchmark.pedantic(
        lambda: run_progressive(dataset, name), rounds=1, iterations=1
    )
    _runs[name] = run
    assert run.skyline_size > 0


def test_report_and_shape(benchmark, dataset):
    benchmark.group = "A4: cost-model projection (default workload)"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in ALGORITHMS:
        if name not in _runs:
            _runs[name] = run_progressive(dataset, name)

    model = CostModel()
    lines = [
        "A4 -- 2005-era cost-model projection (Fig. 10(a) workload)",
        f"records={len(dataset.records)}  buffer={POOL_PAGES} pages  "
        f"weights: rnd={model.random_page_ms}ms seq={model.sequential_page_ms}ms/page "
        f"int={model.m_compare_ms}ms set={model.set_compare_ms}ms",
        "",
        f"{'algorithm':8} {'est. total':>11} {'est. I/O':>10} {'est. CPU':>10} "
        f"{'misses':>8} {'scans':>8}",
    ]
    costs = {}
    for name in ALGORITHMS:
        delta = _runs[name].final_delta
        costs[name] = model.total_cost(delta)
        lines.append(
            f"{name:8} {model.total_cost(delta):10.1f}m {model.io_cost(delta):9.1f}m "
            f"{model.cpu_cost(delta):9.1f}m {delta.get('page_misses', 0):8d} "
            f"{delta.get('tuples_scanned', 0):8d}"
        )
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    pathlib.Path(RESULTS_DIR / "io_costmodel.txt").write_text(text)
    print()
    print(text)

    # The paper's ratio-dependent orderings re-emerge under the model.
    assert costs["bnl+"] < costs["bnl"], "BNL+ should win once sets cost ~10x ints"
    cpu = {name: model.cpu_cost(_runs[name].final_delta) for name in ALGORITHMS}
    for name in ("bbs+", "sdc", "sdc+"):
        assert cpu[name] < cpu["bnl"]
        assert cpu[name] < cpu["bnl+"]
    # SDC's m-dominance-first optimisation dominates the CPU picture.
    assert cpu["sdc"] < cpu["bbs+"]
    assert cpu["sdc+"] < cpu["bbs+"]
