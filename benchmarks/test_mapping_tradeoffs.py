"""Future-work experiment (Section 6): domain-mapping tradeoffs.

The paper closes by asking about "the tradeoffs of using different domain
mapping functions".  This benchmark compares the paper's two-integer
spanning-tree encoding (original-domain fallbacks answered by real set
containment) against the full compressed-transitive-closure mapping of
``repro.posets.closure`` (fallbacks answered exactly by a few integer
interval probes), on the default workload, for BBS+/SDC/SDC+.

Both modes return identical skylines; the closure trades extra per-value
storage (its interval sets) for cheap exact fallbacks.
"""

from __future__ import annotations

import pathlib

import pytest

from conftest import RESULTS_DIR, bench_size
from repro.algorithms.base import get_algorithm
from repro.bench.experiments import get_experiment
from repro.bench.harness import prepare_dataset, run_progressive
from repro.transform.dataset import TransformedDataset
from repro.workloads.generator import generate_workload

EXPERIMENT_ID = "fig10a"  # same workload, different comparison backends
MODES = ("native", "closure")
ALGORITHMS = ("bbs+", "sdc", "sdc+")

_runs: dict[tuple[str, str], object] = {}


@pytest.fixture(scope="module")
def datasets():
    workload = generate_workload(get_experiment(EXPERIMENT_ID).config(bench_size()))
    out = {}
    for mode in MODES:
        dataset = TransformedDataset(
            workload.schema, workload.records, native_mode=mode
        )
        for name in ALGORITHMS:
            prepare_dataset(dataset, get_algorithm(name))
        out[mode] = dataset
    return out


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", ALGORITHMS)
def test_algorithm(benchmark, datasets, mode, name):
    benchmark.group = f"mapping-tradeoff: {name} (native sets vs closure)"
    run = benchmark.pedantic(
        lambda: run_progressive(datasets[mode], name), rounds=1, iterations=1
    )
    _runs[(mode, name)] = run
    assert run.skyline_size > 0


def test_report_and_shape(benchmark, datasets):
    benchmark.group = "mapping-tradeoff: report"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in ALGORITHMS:
        for mode in MODES:
            if (mode, name) not in _runs:
                _runs[(mode, name)] = run_progressive(datasets[mode], name)

    # Identical answers across mappings.
    for name in ALGORITHMS:
        assert _runs[("native", name)].rids == _runs[("closure", name)].rids

    closure_stats = [
        m.closure.average_intervals for m in datasets["closure"].mappings
    ]
    lines = [
        "FW1 -- domain-mapping tradeoff (paper Section 6 future work)",
        f"records={len(datasets['native'].records)}  "
        f"avg closure intervals per value={closure_stats[0]:.2f}",
        "",
        f"{'algorithm':8} {'mode':8} {'total ms':>9} {'set cmps':>9} {'closure cmps':>13}",
    ]
    for name in ALGORITHMS:
        for mode in MODES:
            run = _runs[(mode, name)]
            lines.append(
                f"{name:8} {mode:8} {run.total_elapsed * 1000:8.1f}m "
                f"{run.final_delta['native_set']:9d} "
                f"{run.final_delta['native_closure']:13d}"
            )
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    pathlib.Path(RESULTS_DIR / "mapping_tradeoffs.txt").write_text(text)
    print()
    print(text)

    # Closure mode answers every fallback through intervals, none through
    # sets -- the defining tradeoff.
    for name in ALGORITHMS:
        run = _runs[("closure", name)]
        assert run.final_delta["native_set"] == 0
        assert run.final_delta["native_closure"] > 0
