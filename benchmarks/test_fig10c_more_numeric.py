"""Fig. 10(c): more numeric attributes (4 numeric + 1 set-valued).

Paper headline: skylines grow with dimensionality (8831 answers, 9990
false positives at 500K); BNL+ becomes *worse* than BNL because its
stage-1 filter now solves a 6-dimensional transformed-space skyline
before post-processing.
"""

from __future__ import annotations

import pytest

from conftest import bench_run, bench_size, write_report
from repro.bench.experiments import get_experiment
from repro.bench.harness import count_false_positives
from repro.transform.dataset import TransformedDataset
from repro.workloads.generator import generate_workload

EXPERIMENT_ID = "fig10c"
LABELS = ("BNL", "BNL+", "BBS+", "SDC", "SDC+")


@pytest.mark.parametrize("label", LABELS)
def test_algorithm(benchmark, setup, label):
    points = bench_run(benchmark, setup, label)
    assert points


def test_report_and_shape(benchmark, setup):
    benchmark.group = f"{setup.experiment.id}: figure regeneration"
    runs = benchmark.pedantic(lambda: write_report(setup), rounds=1, iterations=1)

    def checks(run):
        d = run.final_delta
        return d["m_dominance_point"] + d["native_set"] + d["native_numeric"]

    # The paper's BNL+ < BNL inversion: with 6 transformed dimensions the
    # stage-1 filter does more dominance work than native BNL.
    assert checks(runs["BNL+"]) > checks(runs["BNL"])

    # Skyline larger than the 2-numeric default at the same size.
    default_cfg = get_experiment("fig10a").config(bench_size())
    default_wl = generate_workload(default_cfg)
    default_sky, _ = count_false_positives(
        TransformedDataset(default_wl.schema, default_wl.records)
    )
    assert runs["SDC+"].skyline_size > default_sky
