"""Follow the paper's own worked examples, end to end.

Reproduces, with library calls, every concrete number the paper derives
in Sections 3-4 -- the diamond interval mapping of Example 4.2, the
Fig. 4 classification of Example 4.3, the uncovered levels of
Example 4.4 -- and then runs a skyline query over the Fig. 4 domain with
the paper's exact spanning tree pinned, printing the stratum sequence
SDC+ processes.

Run:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

import random

from repro import NumericAttribute, PosetAttribute, Record, Schema, SkylineEngine
from repro.posets import classify, diamond, encode, paper_example_poset
from repro.posets.builder import PAPER_FIG4_SPANNING_EDGES
from repro.posets.spanning_tree import SpanningForest


def example_4_2() -> None:
    print("Example 4.2 -- interval mapping of the Fig. 2 diamond")
    poset = diamond()
    forest = SpanningForest.from_parent_map(poset, {"b": "a", "c": "a", "d": "b"})
    encoding = encode(poset, forest)
    for value, interval in encoding.mapping().items():
        print(f"  f({value}) = {list(interval)}")
    print(
        "  c dominates d natively:",
        poset.dominates("c", "d"),
        "| f(c) contains f(d):",
        encoding.contains("c", "d"),
        " <- the paper's false negative\n",
    )


def examples_4_3_and_4_4() -> SpanningForest:
    print("Examples 4.3 / 4.4 -- Fig. 4 classification and uncovered levels")
    poset = paper_example_poset()
    forest = SpanningForest.from_edge_choice(poset, PAPER_FIG4_SPANNING_EDGES)
    cls = classify(forest)
    print("  partially covering:", "".join(sorted(cls.partially_covering_values)))
    print("  partially covered :", "".join(sorted(cls.partially_covered_values)))
    levels = {v: cls.uncovered_level(v) for v in poset.values}
    print("  uncovered levels  :", levels, "\n")
    return forest


def skyline_over_fig4(forest: SpanningForest) -> None:
    print("Skyline over the Fig. 4 domain (price MIN + Fig. 4 rank)")
    poset = forest.poset
    schema = Schema(
        [
            NumericAttribute("price", "min"),
            PosetAttribute.set_valued("rank", poset),
        ]
    )
    rng = random.Random(42)
    records = [
        Record(i, (rng.randint(1, 100),), (rng.choice(poset.values),))
        for i in range(120)
    ]
    engine = SkylineEngine(schema, records, forests={"rank": forest})
    strata = engine.dataset.stratification
    print("  SDC+ stratum sequence:", ", ".join(s.label for s in strata))
    answers = engine.skyline("sdc+")
    check = engine.skyline("bnl")
    assert sorted(r.rid for r in answers) == sorted(r.rid for r in check)
    print(f"  skyline: {len(answers)} of {len(records)} records "
          f"(SDC+ and BNL agree)")
    sample = sorted(answers, key=lambda r: r.totals[0])[:5]
    for record in sample:
        print(f"    #{record.rid}: price={record.totals[0]}, rank={record.partials[0]!r}")


def main() -> None:
    example_4_2()
    forest = examples_4_3_and_4_4()
    skyline_over_fig4(forest)


if __name__ == "__main__":
    main()
