"""Progressiveness dashboard: watch answers stream out of each algorithm.

Regenerates a miniature of the paper's Fig. 10(a) on the default
Table-1 workload: for BNL, BNL+, BBS+, SDC and SDC+ it prints the time
and dominance-check count at which the first answer and each 20% slice
of the skyline was emitted, plus an ASCII emission timeline.  SDC/SDC+
light up almost immediately; the blocking algorithms stay dark until the
very end.

Run:  python examples/progressive_dashboard.py [num_records]
"""

from __future__ import annotations

import sys

from repro.bench.harness import run_progressive
from repro.bench.reporting import format_run_table, format_timelines
from repro.transform.dataset import TransformedDataset
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

ALGORITHMS = ("bnl", "bnl+", "bbs+", "sdc", "sdc+")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    workload = generate_workload(WorkloadConfig.default(data_size=n))
    dataset = TransformedDataset(workload.schema, workload.records)
    print(f"default Table-1 workload, {n} records\n")

    runs = {}
    for name in ALGORITHMS:
        runs[name.upper()] = run_progressive(dataset, name)

    reference = None
    for label, run in runs.items():
        if reference is None:
            reference = run.rids
        assert run.rids == reference, f"{label} disagrees"

    print(format_run_table(runs, "time", "time-to-output milestones"))
    print()
    print(format_run_table(runs, "checks", "dominance-check milestones"))
    print()
    print(format_timelines(runs))
    print(f"\nskyline size: {len(reference)}")


if __name__ == "__main__":
    main()
