"""Hotel search at scale: 5000 synthetic hotels, every algorithm compared.

Builds a realistic mixed-domain catalogue -- price and distance-to-centre
(both MIN) plus a partially-ordered amenity-package domain sampled from a
generated poset -- then answers the same skyline query with each
evaluator, cross-checks the answers and prints runtime / comparison
statistics.  A miniature version of the paper's Fig. 10(a) experiment on
a concrete application.

Run:  python examples/hotel_search.py [num_hotels]
"""

from __future__ import annotations

import sys
import time

from repro import SkylineEngine
from repro.workloads.scenarios import hotel_catalogue


def main() -> None:
    num_hotels = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    schema, records = hotel_catalogue(num_hotels)
    print(f"catalogue: {num_hotels} hotels, schema {schema!r}\n")

    engine = SkylineEngine(schema, records, strategy="minpc")
    engine.dataset.index  # build the index offline, as the paper does
    for stratum in engine.dataset.stratification:
        stratum.tree

    reference = None
    print(f"{'algorithm':8} {'answers':>8} {'time':>9} {'set-compares':>13}")
    for name in ("bnl", "bnl+", "bbs+", "sdc", "sdc+"):
        before = engine.stats.snapshot()
        start = time.perf_counter()
        answers = engine.skyline(name)
        elapsed = time.perf_counter() - start
        delta = engine.stats.diff(before)
        rids = sorted(r.rid for r in answers)
        if reference is None:
            reference = rids
        assert rids == reference, f"{name} disagrees with the baseline!"
        print(
            f"{name:8} {len(answers):8d} {elapsed * 1000:8.1f}ms "
            f"{delta['native_set']:13d}"
        )

    print(f"\nall algorithms agree on {len(reference)} skyline hotels; sample:")
    engine2 = SkylineEngine(schema, records)
    answers = engine2.skyline("sdc+")
    for record in answers[:5]:
        price, distance = record.totals
        print(f"  {record.rid}:  ${price}, {distance} km, package #{record.partials[0]}")

    # Price/distance scatter: skyline hotels (*) hug the cheap-and-near
    # corner (top-left); the amenity dimension explains the ones that
    # look dominated in this 2-D projection.
    from repro.bench.reporting import ascii_scatter

    skyline_rids = {r.rid for r in answers}
    coords = [(float(r.totals[0]), float(r.totals[1])) for r in records[:1500]]
    stars = {i for i, r in enumerate(records[:1500]) if r.rid in skyline_rids}
    print("\nprice (x) vs distance (y); * = skyline hotel")
    print(ascii_scatter(coords, stars, width=64, height=16))


if __name__ == "__main__":
    main()
