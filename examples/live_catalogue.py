"""Live catalogue: dynamic updates, constrained skylines and k-skybands.

Demonstrates the library's extensions beyond the paper's core (its
Section 6 future-work items): a product catalogue that changes while
being queried.

* products arrive and sell out -- `engine.insert` / `engine.delete`
  maintain the R-tree and the SDC+ strata incrementally;
* a budget shopper runs a **constrained skyline** (price cap + "must
  include the base feature pack");
* a recommender widens the result with a **3-skyband** (products beaten
  by at most two others).

Run:  python examples/live_catalogue.py
"""

from __future__ import annotations

import random

from repro import Record, SkylineEngine
from repro.queries import Constraint, constrained_skyline, k_skyband
from repro.workloads.scenarios import product_catalogue


def main() -> None:
    rng = random.Random(99)
    schema, products = product_catalogue(800, seed=99)
    feature_packs = schema.attribute("features").poset

    engine = SkylineEngine(schema, products, strategy="minpc")
    print(f"initial skyline: {len(engine.skyline('sdc+'))} of {len(products)} products")

    # --- live updates -------------------------------------------------
    sold_out = [r.rid for r in engine.skyline("sdc+")][:5]
    for rid in sold_out:
        engine.delete(rid)
    for i in range(20):
        engine.insert(
            Record(
                f"new-{i:03d}",
                (rng.randint(20, 500), rng.randint(100, 3000)),
                (rng.randrange(len(feature_packs)),),
            )
        )
    print(
        f"after selling out {len(sold_out)} skyline SKUs and adding 20 new ones: "
        f"{len(engine.skyline('sdc+'))} skyline products"
    )

    # --- constrained skyline -------------------------------------------
    base_pack = feature_packs.minimal_values[0]
    budget = Constraint(
        ranges={"price": (None, 150)},
        must_dominate={"features": base_pack},
    )
    answers = constrained_skyline(engine.dataset, budget)
    print(
        f"\nbudget skyline (price <= 150, features >= pack {base_pack!r}): "
        f"{len(answers)} products"
    )
    for point in answers[:5]:
        price, weight = point.record.totals
        print(f"  {point.record.rid}: ${price}, {weight} g, pack #{point.record.partials[0]}")

    # --- k-skyband ------------------------------------------------------
    for k in (1, 2, 3):
        band = k_skyband(engine.dataset, k)
        print(f"{k}-skyband: {len(band)} products")
    print("(the 1-skyband is exactly the skyline; larger k widens the result)")

    # --- incremental result maintenance ----------------------------------
    from repro.queries import MaintainedSkyline

    live = MaintainedSkyline(engine.dataset)
    before = len(live)
    changed = live.apply(
        inserts=[
            Record("flash-sale", (15, 400), (products[0].partials[0],)),
        ],
        deletes=[live.records()[0].rid],
    )
    print(
        f"\nmaintained skyline: {before} -> {len(live)} answers after "
        f"{changed} effective updates (no recomputation)"
    )
    assert live.verify()


if __name__ == "__main__":
    main()
