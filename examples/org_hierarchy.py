"""Skyline over a role hierarchy -- the paper's second motivating domain.

Categorical attributes such as organisational roles are partially
ordered: a project leader outranks their project members, the department
head outranks the leaders, but the heads of *different* departments are
incomparable.  Searching for, say, the most influential yet least
expensive employees is a skyline query mixing a MIN salary attribute with
a partially-ordered rank attribute (higher rank dominates).

This example builds the reporting DAG explicitly with the poset API
(including a matrix-style double-reporting edge, which makes the order a
genuine non-tree DAG with false positives in the transformed space) and
answers the query progressively.

Run:  python examples/org_hierarchy.py
"""

from __future__ import annotations

from repro import (
    NumericAttribute,
    PosetAttribute,
    Record,
    Schema,
    SkylineEngine,
)
from repro.posets import Poset

# (superior, subordinate) reporting edges.  "tooling-lead" reports into
# both engineering and research -- the DAG, non-tree part.
REPORTING = [
    ("president", "eng-head"),
    ("president", "fin-head"),
    ("president", "research-head"),
    ("eng-head", "backend-lead"),
    ("eng-head", "frontend-lead"),
    ("eng-head", "tooling-lead"),
    ("research-head", "tooling-lead"),
    ("research-head", "ml-lead"),
    ("backend-lead", "backend-dev"),
    ("frontend-lead", "frontend-dev"),
    ("tooling-lead", "tooling-dev"),
    ("ml-lead", "ml-dev"),
    ("fin-head", "accountant"),
]

ROLES = sorted({r for edge in REPORTING for r in edge})

# (name, salary k$, role)
EMPLOYEES = [
    ("Avery", 310, "president"),
    ("Blake", 220, "eng-head"),
    ("Cato", 180, "fin-head"),
    ("Dana", 205, "research-head"),
    ("Eli", 150, "backend-lead"),
    ("Farah", 160, "frontend-lead"),
    ("Gus", 140, "tooling-lead"),
    ("Hana", 155, "ml-lead"),
    ("Ivan", 95, "backend-dev"),
    ("Jude", 100, "frontend-dev"),
    ("Kara", 90, "tooling-dev"),
    ("Lior", 105, "ml-dev"),
    ("Mona", 85, "accountant"),
    ("Nils", 240, "eng-head"),  # pricier than Blake in the same role
    ("Odie", 112, "backend-dev"),  # pricier than Ivan in the same role
]


def main() -> None:
    rank = Poset(ROLES, REPORTING)
    schema = Schema(
        [
            NumericAttribute("salary", "min"),
            PosetAttribute("rank", rank),  # reachability-based comparisons
        ]
    )
    records = [Record(name, (salary,), (role,)) for name, salary, role in EMPLOYEES]

    engine = SkylineEngine(schema, records, strategy="minpc")
    print("Influence-per-dollar skyline (salary MIN, rank HIGHER dominates):\n")
    for record in engine.run("sdc+"):
        name, (salary,), (role,) = record.rid, record.totals, record.partials
        print(f"  {name:6} {role:14} ${salary}k")

    pruned = {name for name, _, _ in EMPLOYEES} - {
        r.rid for r in engine.skyline("sdc+")
    }
    print(f"\ndominated: {', '.join(sorted(pruned))}")
    print(
        "\n(e.g. Nils is dominated by Blake -- same rank, higher salary; "
        "Mona survives: nobody cheaper outranks an accountant.)"
    )


if __name__ == "__main__":
    main()
