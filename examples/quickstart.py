"""Quickstart: skyline over a price + amenity-set hotel table.

The paper's motivating example: a tourist wants hotels that are cheap
*and* offer many amenities.  Price is totally ordered (lower is better);
amenity sets are only partially ordered (a superset dominates, disjoint
sets are incomparable), so no single "best" hotel exists -- the skyline
holds every hotel not beaten on both criteria.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import NumericAttribute, PosetAttribute, Record, Schema, skyline
from repro.posets import from_set_family

AMENITY_PACKAGES = {
    "deluxe": {"gym", "pool", "spa", "wifi"},
    "active": {"gym", "pool"},
    "relax": {"spa", "wifi"},
    "gym-only": {"gym"},
    "wifi-only": {"wifi"},
    "none": set(),
}

HOTELS = [
    ("Grand Palace", 320, "deluxe"),
    ("Cheap & Cheerful", 60, "none"),
    ("Fitness Inn", 140, "active"),
    ("Fitness Inn Annex", 190, "active"),  # dominated by Fitness Inn
    ("Spa Retreat", 150, "relax"),
    ("Iron Works", 90, "gym-only"),
    ("Net Cafe Hotel", 85, "wifi-only"),
    ("Overpriced Basic", 110, "none"),  # dominated by Cheap & Cheerful
]


def main() -> None:
    amenity_poset = from_set_family(AMENITY_PACKAGES)
    schema = Schema(
        [
            NumericAttribute("price", "min"),
            PosetAttribute.set_valued("amenities", amenity_poset),
        ]
    )
    records = [
        Record(name, (price,), (package,)) for name, price, package in HOTELS
    ]

    answers = skyline(records, schema, algorithm="sdc+")

    print("Hotel skyline (price MIN, amenities SUPERSET):\n")
    for record in answers:
        package = AMENITY_PACKAGES[record.partials[0]]
        amenities = ", ".join(sorted(package)) or "(none)"
        print(f"  {record.rid:18} ${record.totals[0]:<5} {amenities}")

    dominated = {name for name, _, _ in HOTELS} - {r.rid for r in answers}
    print(f"\nDominated and pruned: {', '.join(sorted(dominated))}")


if __name__ == "__main__":
    main()
